//! Top-level execution: SPMD region setup, plan dispatch, result
//! collection.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use dmsim::{Engine, FaultConfig, Machine, MachineConfig, ProcCtx, RunReport, WorkerPool};
use ooc_array::{OocEnv, OocError, Section, Shape};
use ooc_core::{CompiledProgram, ExecPlan};

/// Per-element initializer: global index → value.
pub type InitFn = Arc<dyn Fn(&[usize]) -> f32 + Send + Sync>;

/// Wrap a closure as an [`InitFn`].
pub fn init_fn(f: impl Fn(&[usize]) -> f32 + Send + Sync + 'static) -> InitFn {
    Arc::new(f)
}

/// Where local array files live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// In-memory logical disks (fast; the default for experiments).
    #[default]
    Memory,
    /// Real scratch files (demonstrates the system against a filesystem).
    Disk,
}

/// Execution configuration.
#[derive(Clone, Default)]
pub struct RunConfig {
    /// Storage backend for local array files.
    pub backend: Backend,
    /// Data-sieving policy for strided reads (PASSION-style runtime
    /// optimization; `Direct` keeps measured I/O equal to the compiler's
    /// estimate).
    pub sieve: Option<pario::SievePolicy>,
    /// Overlap slab fetches with the previous slab's computation (software
    /// pipelining). Leaves the I/O metrics untouched; only time shrinks.
    pub prefetch: bool,
    /// Machine override; defaults to the compiled program's cost model on
    /// its processor count.
    pub machine: Option<MachineConfig>,
    /// Initial values per array (missing arrays start zeroed). Loading is
    /// not charged — the paper amortizes initial distribution.
    pub init: HashMap<String, InitFn>,
    /// Arrays imported from exported `.laf` files before execution
    /// (array name -> directory). Takes precedence over `init`.
    pub import: Vec<(String, std::path::PathBuf)>,
    /// Arrays exported to `.laf` files after execution
    /// (array name -> directory).
    pub export: Vec<(String, std::path::PathBuf)>,
    /// Arrays to gather into global buffers after the run (verification).
    pub collect: Vec<String>,
    /// Byte budget of a slab reuse cache in front of each logical disk
    /// (`None` = uncached, the default). The cache is enabled after the
    /// uncharged setup (allocation, init, import) so it starts cold, and
    /// flushed — charged — after every plan, so dirty slabs always reach
    /// disk inside the timed region.
    pub cache_budget: Option<usize>,
    /// Deterministic fault injection (`None` = off, bit-identical to a
    /// build without the fault subsystem). The same config seeds both the
    /// per-rank disk injectors and the message-fabric injectors; transient
    /// faults are absorbed by the retry policy, permanent faults trigger a
    /// bounded checkpoint/restart recovery of the whole program with hard
    /// faults quiesced.
    pub fault: Option<FaultConfig>,
    /// Directory for slab-granular recovery checkpoints. With faults on,
    /// executors that support it (GAXPY) checkpoint their output here at
    /// slab boundaries, and a recovery re-run resumes from the agreed
    /// watermark instead of from scratch.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Tracing override. `None` follows the compiled program's
    /// [`ooc_core::CompilerOptions::trace`]; `Some` replaces it (e.g. to
    /// trace a program compiled without tracing, or to silence one).
    /// Ignored when [`RunConfig::machine`] is set — an explicit machine
    /// carries its own trace configuration.
    pub trace: Option<dmsim::TraceConfig>,
    /// Override the compiler's per-access I/O method selection for every
    /// remap-style access (pre-statement redistributions, transposes).
    /// `Sieved` additionally sets the environment's sieve policy to
    /// `Always`, so strided section reads sieve everywhere. `None` (the
    /// default) runs what the compiler chose.
    pub io_method: Option<pario::IoMethod>,
    /// Workload job tag. Job 0 (the default) is bit-identical to a build
    /// without the workload runtime; a nonzero tag gives this run its own
    /// fault/RNG streams per (job, rank) and labels its requests for the
    /// `ooc-sched` disk-farm scheduler.
    pub job: u32,
    /// Execution engine override. `None` follows the compiled program's
    /// [`ooc_core::CompilerOptions::engine`]; `Some` replaces it. Ignored
    /// when [`RunConfig::machine`] is set — an explicit machine carries its
    /// own engine. Reports are bit-identical across engines.
    pub engine: Option<Engine>,
    /// Host the ranks on this existing worker pool instead of building a
    /// transient one per run. Implies the pooled engine regardless of
    /// `engine`/`machine`; required for running many programs concurrently
    /// on one fixed set of OS threads (see [`start`]).
    pub pool: Option<WorkerPool>,
}

/// Bound on whole-program recovery re-runs after a permanent fault.
const MAX_RECOVERIES: usize = 2;

/// Execution failure.
#[derive(Debug)]
pub enum RunError {
    /// An I/O layer operation failed.
    Io(pario::IoError),
    /// A communication operation failed (typically a peer rank lost to a
    /// permanent fault) and recovery was exhausted or disabled.
    Comm(dmsim::CommError),
    /// The configuration is inconsistent with the compiled program.
    Config(String),
    /// The run died on the pool without completing: a simulated deadlock
    /// was detected, or the run was explicitly killed (a workload watchdog
    /// evicting a hung job). Not retried by the recovery loop — the
    /// workload layer decides whether to resubmit or quarantine.
    Hung(dmsim::RunDeath),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Io(e) => write!(f, "I/O error: {e}"),
            RunError::Comm(e) => write!(f, "communication error: {e}"),
            RunError::Config(m) => write!(f, "configuration error: {m}"),
            RunError::Hung(d) => write!(f, "run died without completing: {d}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<pario::IoError> for RunError {
    fn from(e: pario::IoError) -> Self {
        RunError::Io(e)
    }
}

impl From<OocError> for RunError {
    fn from(e: OocError) -> Self {
        match e {
            OocError::Io(e) => RunError::Io(e),
            OocError::Comm(e) => RunError::Comm(e),
        }
    }
}

/// Result of executing a compiled program.
#[derive(Debug)]
pub struct RunOutcome {
    /// Timing and operation counters from the simulated machine.
    pub report: RunReport,
    /// Gathered global arrays (column-major), for the names requested in
    /// [`RunConfig::collect`].
    pub collected: HashMap<String, (Shape, Vec<f32>)>,
    /// Largest number of in-core elements any processor held at once.
    pub peak_elems: usize,
}

/// What each rank hands back from the SPMD region.
pub(crate) struct RankResult {
    pub collected: Vec<(String, Vec<f32>)>,
    pub peak_elems: usize,
}

/// Build and validate the machine configuration for one run of `compiled`
/// under `cfg` (engine resolution: `cfg.machine` > `cfg.engine` >
/// `compiled.engine`).
fn machine_config(compiled: &CompiledProgram, cfg: &RunConfig) -> Result<MachineConfig, RunError> {
    let p = compiled.nprocs();
    let mut machine_cfg = cfg.machine.clone().unwrap_or_else(|| {
        MachineConfig::new(p, compiled.model.clone())
            .with_trace(cfg.trace.unwrap_or(compiled.trace))
            .with_engine(compiled.engine)
    });
    if let Some(engine) = cfg.engine {
        machine_cfg.engine = engine;
    }
    if cfg.job != 0 {
        machine_cfg.job = cfg.job;
    }
    if machine_cfg.nprocs != p {
        return Err(RunError::Config(format!(
            "machine has {} processors but the program was compiled for {p}",
            machine_cfg.nprocs
        )));
    }
    for name in &cfg.collect {
        if compiled.hir.array(name).is_none() {
            return Err(RunError::Config(format!(
                "cannot collect unknown array `{name}`"
            )));
        }
    }
    for (name, _) in cfg.import.iter().chain(cfg.export.iter()) {
        if compiled.hir.array(name).is_none() {
            return Err(RunError::Config(format!(
                "cannot import/export unknown array `{name}`"
            )));
        }
    }
    Ok(machine_cfg)
}

/// What one attempt's per-rank results amount to.
enum Sift {
    /// Every rank succeeded.
    Done(Vec<RankResult>),
    /// At least one rank failed recoverably and the recovery budget is not
    /// exhausted: re-run with hard faults quiesced.
    Retry,
}

/// Separate an attempt's results into success / retry / hard failure.
fn sift_attempt(
    results: Vec<Result<RankResult, OocError>>,
    recoveries: usize,
) -> Result<Sift, RunError> {
    let mut ok = Vec::with_capacity(results.len());
    let mut first_err: Option<OocError> = None;
    let mut all_recoverable = true;
    for r in results {
        match r {
            Ok(v) => ok.push(v),
            Err(e) => {
                all_recoverable &= e.is_recoverable();
                first_err.get_or_insert(e);
            }
        }
    }
    match first_err {
        None => Ok(Sift::Done(ok)),
        Some(e) => {
            if !all_recoverable || recoveries >= MAX_RECOVERIES {
                Err(e.into())
            } else {
                Ok(Sift::Retry)
            }
        }
    }
}

/// Quiesce hard faults for a recovery re-run.
fn quiesce(fault: &mut Option<FaultConfig>) {
    if let Some(fc) = fault.as_mut() {
        fc.hard_read = 0.0;
        fc.hard_write = 0.0;
    }
}

/// Assemble the final outcome (collected arrays, peak) outside the timed
/// region.
fn assemble_outcome(
    compiled: &CompiledProgram,
    cfg: &RunConfig,
    report: RunReport,
    rank_results: Vec<RankResult>,
) -> RunOutcome {
    let mut collected = HashMap::new();
    for name in &cfg.collect {
        let id = compiled
            .hir
            .arrays
            .iter()
            .position(|a| a.name == *name)
            .expect("validated");
        let desc = &compiled.descs[id];
        let per_rank: Vec<&[f32]> = rank_results
            .iter()
            .map(|r| {
                r.collected
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v.as_slice())
                    .expect("collected on every rank")
            })
            .collect();
        collected.insert(
            name.clone(),
            crate::verify::assemble_global(desc, &per_rank),
        );
    }
    let peak_elems = rank_results.iter().map(|r| r.peak_elems).max().unwrap_or(0);
    RunOutcome {
        report,
        collected,
        peak_elems,
    }
}

/// Execute every plan of `compiled` in order on the simulated machine.
pub fn run(compiled: &CompiledProgram, cfg: &RunConfig) -> Result<RunOutcome, RunError> {
    let machine_cfg = machine_config(compiled, cfg)?;

    // Fault-recovery loop: a permanent fault (or the resulting loss of a
    // peer mid-collective) triggers a bounded re-run with hard faults
    // quiesced; checkpointed executors resume from their last slab
    // watermark. Everything is deterministic — the re-run is as much a
    // pure function of the seed as the first attempt.
    let mut fault = cfg.fault.clone();
    let mut recoveries = 0usize;
    let (report, rank_results) = loop {
        let mut machine = Machine::new(machine_cfg.clone());
        if let Some(fc) = &fault {
            machine = machine.with_fault_injection(fc.clone());
        }
        let rank_fault = fault.clone();
        let body = |ctx: &ProcCtx| execute_rank(ctx, compiled, cfg, rank_fault.as_ref());
        let (report, results) = match &cfg.pool {
            Some(pool) => machine.run_on(pool, body),
            None => machine.run_with(body),
        };
        match sift_attempt(results, recoveries)? {
            Sift::Done(ok) => break (report, ok),
            Sift::Retry => {
                recoveries += 1;
                quiesce(&mut fault);
            }
        }
    };
    Ok(assemble_outcome(compiled, cfg, report, rank_results))
}

/// A program submitted to a shared worker pool, running in the background.
///
/// Produced by [`start`]; redeem with [`StartedRun::wait`]. Many started
/// runs coexist on one pool — that is the whole point: a fixed set of OS
/// threads hosts every rank of every job as cooperative tasks.
pub struct StartedRun {
    compiled: Arc<CompiledProgram>,
    cfg: Arc<RunConfig>,
    pool: WorkerPool,
    machine_cfg: MachineConfig,
    fault: Option<FaultConfig>,
    recoveries: usize,
    handle: dmsim::RunHandle<Result<RankResult, OocError>>,
}

/// Submit one attempt of `compiled` to the pool without blocking.
fn launch_attempt(
    compiled: &Arc<CompiledProgram>,
    cfg: &Arc<RunConfig>,
    machine_cfg: &MachineConfig,
    fault: &Option<FaultConfig>,
    pool: &WorkerPool,
) -> dmsim::RunHandle<Result<RankResult, OocError>> {
    let mut machine = Machine::new(machine_cfg.clone());
    if let Some(fc) = fault {
        machine = machine.with_fault_injection(fc.clone());
    }
    let compiled = Arc::clone(compiled);
    let cfg = Arc::clone(cfg);
    let fault = fault.clone();
    machine.start_on(pool, move |ctx| {
        execute_rank(ctx, &compiled, &cfg, fault.as_ref())
    })
}

/// Start executing `compiled` on `pool` and return without waiting.
///
/// The non-blocking counterpart of [`run`]: the program's ranks join the
/// pool's run queue immediately and execute interleaved with every other
/// started run. Call [`StartedRun::wait`] to block for the outcome; fault
/// recovery (the same bounded re-run loop as [`run`]) happens inside
/// `wait`. `cfg.pool` is ignored — the explicit `pool` argument hosts the
/// run. Requires the pooled engine's platform support (x86_64/aarch64).
pub fn start(
    compiled: Arc<CompiledProgram>,
    cfg: Arc<RunConfig>,
    pool: &WorkerPool,
) -> Result<StartedRun, RunError> {
    let machine_cfg = machine_config(&compiled, &cfg)?;
    let fault = cfg.fault.clone();
    let handle = launch_attempt(&compiled, &cfg, &machine_cfg, &fault, pool);
    Ok(StartedRun {
        compiled,
        cfg,
        pool: pool.clone(),
        machine_cfg,
        fault,
        recoveries: 0,
        handle,
    })
}

impl StartedRun {
    /// True once every rank of the current attempt has finished (cheap,
    /// non-blocking; a recovery re-run resets it).
    pub fn is_done(&self) -> bool {
        self.handle.is_done()
    }

    /// Block until the program completes, running the bounded
    /// fault-recovery loop if attempts fail recoverably. A run that dies on
    /// the pool (deadlock, external kill) surfaces as [`RunError::Hung`]
    /// instead of a panic.
    pub fn wait(self) -> Result<RunOutcome, RunError> {
        let StartedRun {
            compiled,
            cfg,
            pool,
            machine_cfg,
            mut fault,
            mut recoveries,
            mut handle,
        } = self;
        loop {
            let (report, results) = handle.wait_outcome().map_err(RunError::Hung)?;
            match sift_attempt(results, recoveries)? {
                Sift::Done(ok) => return Ok(assemble_outcome(&compiled, &cfg, report, ok)),
                Sift::Retry => {
                    recoveries += 1;
                    quiesce(&mut fault);
                    handle = launch_attempt(&compiled, &cfg, &machine_cfg, &fault, &pool);
                }
            }
        }
    }

    /// Tear the run down: unfinished ranks are reaped without touching
    /// other runs on the pool, partial results are discarded. Returns which
    /// ranks were reaped.
    pub fn abort(self) -> dmsim::RunDeath {
        self.handle.kill()
    }

    /// Preempt the run: tear down the current attempt but keep its
    /// configuration — and any slab checkpoints it has written under
    /// [`RunConfig::checkpoint_dir`] — so [`PreemptedRun::resume`] can
    /// resubmit it later. Checkpointing executors resume from their last
    /// agreed slab watermark; work past the watermark is lost (re-done).
    pub fn preempt(self) -> PreemptedRun {
        let StartedRun {
            compiled,
            cfg,
            pool,
            machine_cfg,
            fault,
            recoveries,
            handle,
        } = self;
        let death = handle.kill();
        PreemptedRun {
            compiled,
            cfg,
            pool,
            machine_cfg,
            fault,
            recoveries,
            death,
        }
    }
}

/// A program preempted off the pool: its current attempt was torn down,
/// but its configuration and checkpoints survive for a later [`resume`].
///
/// [`resume`]: PreemptedRun::resume
pub struct PreemptedRun {
    compiled: Arc<CompiledProgram>,
    cfg: Arc<RunConfig>,
    pool: WorkerPool,
    machine_cfg: MachineConfig,
    fault: Option<FaultConfig>,
    recoveries: usize,
    death: dmsim::RunDeath,
}

impl PreemptedRun {
    /// Which ranks the preemption reaped mid-flight.
    pub fn death(&self) -> &dmsim::RunDeath {
        &self.death
    }

    /// Resubmit the program to its pool. With a checkpoint directory
    /// configured, checkpointing executors skip the slabs already agreed
    /// complete; without one the program restarts from scratch.
    pub fn resume(self) -> StartedRun {
        let PreemptedRun {
            compiled,
            cfg,
            pool,
            machine_cfg,
            fault,
            recoveries,
            death: _,
        } = self;
        let handle = launch_attempt(&compiled, &cfg, &machine_cfg, &fault, &pool);
        StartedRun {
            compiled,
            cfg,
            pool,
            machine_cfg,
            fault,
            recoveries,
            handle,
        }
    }
}

/// Stable phase name for statement `i`: position plus what it computes, so
/// trace consumers (and the divergence report) can align phases with the
/// compiler's per-statement estimates.
pub(crate) fn phase_label(i: usize, plan: &ExecPlan) -> String {
    match plan {
        ExecPlan::Gaxpy(g) => format!("s{i}:gaxpy({})", g.c.name),
        ExecPlan::Elementwise(e) => format!("s{i}:forall({})", e.lhs.name),
        ExecPlan::Transpose(t) => format!("s{i}:transpose({})", t.dst.name),
        ExecPlan::Spmv(s) => format!("s{i}:spmv({})", s.y.name),
    }
}

fn execute_rank(
    ctx: &ProcCtx,
    compiled: &CompiledProgram,
    cfg: &RunConfig,
    fault: Option<&FaultConfig>,
) -> Result<RankResult, OocError> {
    let rank = ctx.rank();
    let mut env = match cfg.backend {
        Backend::Memory => OocEnv::in_memory(rank),
        Backend::Disk => OocEnv::on_disk(rank)?,
    };
    if let Some(policy) = cfg.sieve {
        env.set_sieve_policy(policy);
    }
    if cfg.io_method == Some(pario::IoMethod::Sieved) {
        env.set_sieve_policy(pario::SievePolicy::Always);
    }
    for desc in &compiled.descs {
        env.alloc(desc)?;
        if let Some(init) = cfg.init.get(&desc.name) {
            let f = init.clone();
            env.load_global(desc, &move |g| f(g))?;
        }
    }
    // Statement-local temporaries (e.g. remap targets) carry fresh ids
    // beyond the declared arrays.
    for plan in &compiled.plans {
        for desc in plan.arrays() {
            env.alloc(desc)?;
        }
    }
    for (name, dir) in &cfg.import {
        let desc = compiled
            .descs
            .iter()
            .find(|d| d.name == *name)
            .expect("validated by run()");
        ooc_array::import_array(&mut env, desc, dir)?;
    }

    // Setup (allocation, init, import) is uncharged and must stay uncached
    // so the cache starts cold and only captures the plans' reuse.
    if let Some(budget) = cfg.cache_budget {
        env.enable_cache(budget);
    }
    // Faults arm only after setup: the measured region is where the paper's
    // I/O happens, and initial distribution is amortized (and assumed
    // reliable) anyway.
    if let Some(fc) = fault {
        env.enable_faults_for_job(fc, ctx.job());
    }

    let mut peak = 0usize;
    for (i, plan) in compiled.plans.iter().enumerate() {
        // One phase span per compiled statement, labeled by what it does;
        // every charge inside (including the cache flush below, which is
        // part of the statement's I/O) is attributed to this phase.
        let _phase = ctx.trace_phase(&phase_label(i, plan));
        let used = match plan {
            ExecPlan::Gaxpy(g) => {
                let opts = crate::gaxpy::RecoveryOpts {
                    checkpoint_dir: cfg.checkpoint_dir.as_deref(),
                    model: Some(&compiled.model),
                    cache_budget: cfg.cache_budget,
                };
                crate::gaxpy::execute_recoverable(ctx, &mut env, g, cfg.prefetch, ctx, &opts)?
            }
            ExecPlan::Elementwise(e) => {
                let plan;
                let e = match cfg.io_method {
                    Some(m) => {
                        plan = ooc_core::plan::ElwPlan {
                            pre_remaps: e
                                .pre_remaps
                                .iter()
                                .map(|r| ooc_core::plan::RemapSpec {
                                    method: m,
                                    ..r.clone()
                                })
                                .collect(),
                            ..e.clone()
                        };
                        &plan
                    }
                    None => e,
                };
                crate::elementwise::execute_prefetched(ctx, &mut env, e, cfg.prefetch)?
            }
            ExecPlan::Transpose(t) => {
                let plan;
                let t = match cfg.io_method {
                    Some(m) => {
                        plan = ooc_core::plan::TransposePlan {
                            method: m,
                            ..t.clone()
                        };
                        &plan
                    }
                    None => t,
                };
                crate::transpose::execute(ctx, &mut env, t)?
            }
            ExecPlan::Spmv(s) => {
                // A forced method (run config or compile-time forcing)
                // pins the gather; otherwise the executor re-selects from
                // the inspected schedule's allreduced statistics.
                let plan;
                let (s, model) = match cfg.io_method {
                    Some(m) => {
                        plan = ooc_core::plan::SpmvPlan {
                            method: m,
                            ..(**s).clone()
                        };
                        (&plan, None)
                    }
                    None => (&**s, Some(&compiled.model)),
                };
                crate::spmv::execute(ctx, &mut env, s, model)?
            }
        };
        peak = peak.max(used);
        // Dirty slabs are part of the statement's I/O: write them back,
        // charged, before the next statement (or collection) observes them.
        env.flush_cache(ctx)?;
    }

    for (name, dir) in &cfg.export {
        let desc = compiled
            .descs
            .iter()
            .find(|d| d.name == *name)
            .expect("validated by run()");
        ooc_array::export_array(&mut env, desc, dir)?;
    }

    // Collection (uncharged reads, no communication: data returns through
    // the thread join).
    let mut collected = Vec::new();
    for name in &cfg.collect {
        let id = compiled
            .hir
            .arrays
            .iter()
            .position(|a| a.name == *name)
            .expect("validated by run()");
        let desc = &compiled.descs[id];
        let local = env.read_section_uncharged(desc, &Section::full(&desc.local_shape(rank)))?;
        collected.push((name.clone(), local));
    }
    Ok(RankResult {
        collected,
        peak_elems: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::{compile_source, CompilerOptions};

    #[test]
    fn unknown_collect_array_is_a_config_error() {
        let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
        let cfg = RunConfig {
            collect: vec!["nope".into()],
            ..RunConfig::default()
        };
        let err = run(&compiled, &cfg).unwrap_err();
        assert!(matches!(err, RunError::Config(_)));
    }

    #[test]
    fn mismatched_machine_is_a_config_error() {
        let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
        let cfg = RunConfig {
            machine: Some(MachineConfig::free(2)), // program wants 4
            ..RunConfig::default()
        };
        let err = run(&compiled, &cfg).unwrap_err();
        assert!(matches!(err, RunError::Config(_)));
    }
}
