//! Estimate-vs-measured divergence reports.
//!
//! The compiler prices every statement symbolically
//! ([`ooc_core::CostEstimate`], reuse-aware when a cache budget is set);
//! the tracing layer measures what the executor actually did, phase by
//! phase, on the simulated clock. This module replays the estimates against
//! the measured per-phase counters of a captured [`Trace`] and reports the
//! gap per (phase, array, metric), largest relative divergence first.
//!
//! On configurations the estimators model exactly — uncached runs, or
//! GAXPY under a slab cache — every row is zero-gap, which is the baseline
//! the test suite pins. Anything nonzero is a model/runtime discrepancy
//! worth investigating: checkpoint traffic, sieving overreads, or an
//! estimator that has not learned a runtime reorganization yet.

use std::collections::BTreeMap;

use dmsim::Trace;
use ooc_core::{CompiledProgram, ExecPlan};
use ooc_trace::{Category, EventKind};

/// One compared counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceRow {
    /// Phase (statement) label, e.g. `s0:gaxpy(c)`.
    pub phase: String,
    /// Array the counter belongs to. Cache write-backs carry the owning
    /// array too (the cache's file→array registry re-tags them), so write
    /// rows stay per-array in every configuration.
    pub array: String,
    /// Which counter: `read_requests`, `read_bytes`, `write_requests` or
    /// `write_bytes`.
    pub metric: &'static str,
    /// The compiler's prediction.
    pub estimated: u64,
    /// What rank 0's trace recorded.
    pub measured: u64,
}

impl DivergenceRow {
    /// Signed gap `measured - estimated`.
    pub fn gap(&self) -> i64 {
        self.measured as i64 - self.estimated as i64
    }

    /// Relative gap `|measured - estimated| / max(estimated, 1)`.
    pub fn rel_gap(&self) -> f64 {
        self.gap().unsigned_abs() as f64 / (self.estimated.max(1)) as f64
    }
}

/// All compared counters of one run.
#[derive(Debug, Clone, Default)]
pub struct DivergenceReport {
    /// Rows sorted by descending relative gap (ties: source order).
    pub rows: Vec<DivergenceRow>,
}

impl DivergenceReport {
    /// True when every measured counter equals its estimate.
    pub fn is_zero_gap(&self) -> bool {
        self.rows.iter().all(|r| r.estimated == r.measured)
    }

    /// Largest relative gap, 0.0 for an empty report.
    pub fn max_rel_gap(&self) -> f64 {
        self.rows.iter().map(|r| r.rel_gap()).fold(0.0, f64::max)
    }

    /// Rows with a nonzero gap.
    pub fn divergent(&self) -> impl Iterator<Item = &DivergenceRow> {
        self.rows.iter().filter(|r| r.estimated != r.measured)
    }

    /// Fixed-width table, worst divergence first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:<10} {:<14} {:>12} {:>12} {:>9}\n",
            "phase", "array", "metric", "estimated", "measured", "gap"
        ));
        for r in &self.rows {
            let gap = if r.estimated == r.measured {
                "=".to_string()
            } else {
                format!("{:+.1}%", 100.0 * r.rel_gap() * r.gap().signum() as f64)
            };
            out.push_str(&format!(
                "{:<22} {:<10} {:<14} {:>12} {:>12} {:>9}\n",
                r.phase, r.array, r.metric, r.estimated, r.measured, gap
            ));
        }
        out
    }
}

/// Measured disk traffic of one phase, rank 0.
#[derive(Default)]
struct Measured {
    /// array -> (requests, bytes) from tagged `DiskRead` spans.
    reads: BTreeMap<String, (u64, u64)>,
    /// array -> (requests, bytes) from tagged `DiskWrite` spans.
    writes: BTreeMap<String, (u64, u64)>,
    /// array -> (requests, bytes) from `WriteBack` spans; the cache's
    /// file→array registry restores the identity the deferred flush would
    /// otherwise have lost.
    write_backs: BTreeMap<String, (u64, u64)>,
}

/// Compare the compiled estimates with a measured trace.
///
/// Estimates come from [`CompiledProgram::estimates`] — reuse-aware if the
/// program was compiled with [`ooc_core::CompilerOptions::cache_budget`]
/// matching the run's cache — and are per-rank-0, so the measured side is
/// rank 0's timeline. Statements are matched to phases by the executor's
/// phase labels; a trace captured without tracing enabled yields an empty
/// report.
pub fn divergence_report(compiled: &CompiledProgram, trace: &Trace) -> DivergenceReport {
    let mut report = DivergenceReport::default();
    let Some(rt) = trace.ranks.first() else {
        return report;
    };

    // Bucket rank 0's disk spans by phase name.
    let mut by_phase: BTreeMap<&str, Measured> = BTreeMap::new();
    for ev in &rt.events {
        if ev.kind != EventKind::Span {
            continue;
        }
        let Some(phase) = rt.phase_name(ev) else {
            continue;
        };
        let m = by_phase.entry(phase).or_default();
        let key = ev.args.array.clone().unwrap_or_else(|| "?".to_string());
        match ev.cat {
            Category::DiskRead => {
                let e = m.reads.entry(key).or_default();
                e.0 += ev.args.requests;
                e.1 += ev.args.bytes;
            }
            Category::DiskWrite => {
                let e = m.writes.entry(key).or_default();
                e.0 += ev.args.requests;
                e.1 += ev.args.bytes;
            }
            Category::WriteBack => {
                let e = m.write_backs.entry(key).or_default();
                e.0 += ev.args.requests;
                e.1 += ev.args.bytes;
            }
            _ => {}
        }
    }

    let empty = Measured::default();
    for (i, (plan, est)) in compiled.plans.iter().zip(&compiled.estimates).enumerate() {
        let phase = crate::exec::phase_label(i, plan);
        let m = by_phase.get(phase.as_str()).unwrap_or(&empty);
        let es = est.elem_size as u64;

        // Reads keep per-array identity on both sides.
        let mut read_arrays: Vec<&str> = est
            .totals
            .per_array
            .iter()
            .filter(|(_, t)| t.read_requests > 0)
            .map(|(n, _)| n.as_str())
            .collect();
        for name in m.reads.keys() {
            if !read_arrays.contains(&name.as_str()) {
                read_arrays.push(name);
            }
        }
        for name in read_arrays {
            let t = est.totals.per_array.get(name);
            let (mr, mb) = m.reads.get(name).copied().unwrap_or((0, 0));
            push_pair(
                &mut report,
                &phase,
                name,
                "read_requests",
                t.map_or(0, |t| t.read_requests),
                mr,
                "read_bytes",
                t.map_or(0, |t| t.read_elems * es),
                mb,
            );
        }

        // Writes: direct writes and deferred cache write-backs both carry
        // array identity, so write traffic compares per-array in every
        // configuration (an untagged write-back would surface as a `?` row,
        // not vanish into an aggregate).
        let mut write_arrays: Vec<&str> = est
            .totals
            .per_array
            .iter()
            .filter(|(_, t)| t.write_requests > 0)
            .map(|(n, _)| n.as_str())
            .collect();
        for name in m.writes.keys().chain(m.write_backs.keys()) {
            if !write_arrays.contains(&name.as_str()) {
                write_arrays.push(name);
            }
        }
        for name in write_arrays {
            let t = est.totals.per_array.get(name);
            let (dr, db) = m.writes.get(name).copied().unwrap_or((0, 0));
            let (wr, wb) = m.write_backs.get(name).copied().unwrap_or((0, 0));
            push_pair(
                &mut report,
                &phase,
                name,
                "write_requests",
                t.map_or(0, |t| t.write_requests),
                dr + wr,
                "write_bytes",
                t.map_or(0, |t| t.write_elems * es),
                db + wb,
            );
        }
    }

    report
        .rows
        .sort_by(|a, b| b.rel_gap().partial_cmp(&a.rel_gap()).unwrap());
    report
}

#[allow(clippy::too_many_arguments)]
fn push_pair(
    report: &mut DivergenceReport,
    phase: &str,
    array: &str,
    req_metric: &'static str,
    est_req: u64,
    meas_req: u64,
    byte_metric: &'static str,
    est_bytes: u64,
    meas_bytes: u64,
) {
    report.rows.push(DivergenceRow {
        phase: phase.to_string(),
        array: array.to_string(),
        metric: req_metric,
        estimated: est_req,
        measured: meas_req,
    });
    report.rows.push(DivergenceRow {
        phase: phase.to_string(),
        array: array.to_string(),
        metric: byte_metric,
        estimated: est_bytes,
        measured: meas_bytes,
    });
}

/// Convenience for whole-program checks: a statement index is not needed
/// when asserting the global baseline.
pub fn phase_labels(compiled: &CompiledProgram) -> Vec<String> {
    compiled
        .plans
        .iter()
        .enumerate()
        .map(|(i, p)| crate::exec::phase_label(i, p))
        .collect()
}

/// Re-export of the label scheme for one statement (stable API for report
/// consumers).
pub fn statement_phase_label(i: usize, plan: &ExecPlan) -> String {
    crate::exec::phase_label(i, plan)
}
