//! # noderun — executing compiled out-of-core programs
//!
//! Interprets the [`ooc_core::ExecPlan`]s of a compiled program as real SPMD
//! node programs on the simulated machine: every slab fetch goes through the
//! parallel I/O layer (and is charged to the cost model), every reduction
//! and ghost exchange moves real floats through the message fabric, and the
//! arithmetic is performed on the actual data, so results can be verified
//! against serial references while the run report reproduces the paper's
//! I/O metrics.
//!
//! ```
//! use ooc_core::{compile_source, CompilerOptions};
//! use noderun::{run, RunConfig};
//!
//! let compiled = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
//! let mut cfg = RunConfig::default();
//! cfg.collect = vec!["c".to_string()];
//! cfg.init.insert("a".into(), noderun::init_fn(|g| (g[0] + 2 * g[1]) as f32 * 0.001));
//! cfg.init.insert("b".into(), noderun::init_fn(|g| (g[0] * 3 + g[1]) as f32 * 0.001));
//! let outcome = run(&compiled, &cfg).unwrap();
//! assert!(outcome.report.elapsed() > 0.0);
//! let (_, c) = &outcome.collected["c"];
//! assert_eq!(c.len(), 64 * 64);
//! ```

pub mod divergence;
pub mod elementwise;
pub mod exec;
pub mod gaxpy;
pub mod kernels;
pub mod spmv;
pub mod trace;
pub mod transpose;
pub mod verify;

pub use divergence::{divergence_report, DivergenceReport, DivergenceRow};
pub use exec::{
    init_fn, run, start, Backend, InitFn, PreemptedRun, RunConfig, RunError, RunOutcome, StartedRun,
};
pub use gaxpy::RecoveryOpts;
pub use ooc_array::OocError;
pub use verify::{assemble_global, max_abs_diff, ref_gaxpy, ref_jacobi, ref_transpose};
