//! Diagnostics for the front end.

use std::fmt;

/// A front-end error with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl FrontError {
    /// Error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        FrontError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FrontError {}

/// Result alias for front-end phases.
pub type FrontResult<T> = Result<T, FrontError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = FrontError::new(12, "unexpected token `)`");
        assert_eq!(e.to_string(), "line 12: unexpected token `)`");
    }
}
