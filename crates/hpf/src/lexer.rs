//! Line-oriented lexer.
//!
//! Fortran-style input: one statement per line, `!` starts a comment unless
//! the line is an `!hpf$` directive, case-insensitive identifiers (the lexer
//! lower-cases them). Each source line becomes a token line tagged with its
//! 1-based line number.

use crate::error::{FrontError, FrontResult};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (contains `.` or exponent).
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real(v) => write!(f, "{v}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Eq => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Colon => write!(f, ":"),
            Tok::ColonColon => write!(f, "::"),
        }
    }
}

/// One tokenized source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TokLine {
    /// 1-based source line number.
    pub line: usize,
    /// True when the line began with `!hpf$`.
    pub directive: bool,
    /// The tokens.
    pub toks: Vec<Tok>,
}

/// Tokenize a whole source text into non-empty token lines.
pub fn tokenize(source: &str) -> FrontResult<Vec<TokLine>> {
    let mut lines = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let lineno = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (directive, rest) = match strip_directive_prefix(trimmed) {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        // Comments: everything from `!` (non-directive) to end of line.
        let code = match rest.find('!') {
            Some(pos) => &rest[..pos],
            None => rest,
        };
        if code.trim().is_empty() {
            continue;
        }
        let toks = tokenize_line(code, lineno)?;
        if !toks.is_empty() {
            lines.push(TokLine {
                line: lineno,
                directive,
                toks,
            });
        }
    }
    Ok(lines)
}

fn strip_directive_prefix(line: &str) -> Option<&str> {
    let lower = line.to_ascii_lowercase();
    if lower.starts_with("!hpf$") {
        Some(&line[5..])
    } else {
        None
    }
}

fn tokenize_line(code: &str, line: usize) -> FrontResult<Vec<Tok>> {
    let mut toks = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                    toks.push(Tok::ColonColon);
                    i += 2;
                } else {
                    toks.push(Tok::Colon);
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E') && !saw_exp && i > start {
                        saw_exp = true;
                        i += 1;
                        if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &code[start..i];
                if saw_dot || saw_exp {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| FrontError::new(line, format!("bad real literal `{text}`")))?;
                    toks.push(Tok::Real(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| {
                        FrontError::new(line, format!("bad integer literal `{text}`"))
                    })?;
                    toks.push(Tok::Int(v));
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(code[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(FrontError::new(
                    line,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let lines = tokenize("      do j = 1, n\n").unwrap();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].directive);
        assert_eq!(
            lines[0].toks,
            vec![
                Tok::Ident("do".into()),
                Tok::Ident("j".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Comma,
                Tok::Ident("n".into()),
            ]
        );
    }

    #[test]
    fn directive_lines_are_flagged() {
        let lines = tokenize("!hpf$ distribute d(block) on pr").unwrap();
        assert!(lines[0].directive);
        assert_eq!(lines[0].toks[0], Tok::Ident("distribute".into()));
    }

    #[test]
    fn comments_are_stripped() {
        let lines = tokenize("      x = 1 ! set x\n! whole-line comment\n").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].toks.len(), 3);
    }

    #[test]
    fn numbers_and_reals() {
        let lines = tokenize("x = 0.25 * 4 + 1e2").unwrap();
        assert_eq!(
            lines[0].toks,
            vec![
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Real(0.25),
                Tok::Star,
                Tok::Int(4),
                Tok::Plus,
                Tok::Real(100.0),
            ]
        );
    }

    #[test]
    fn double_colon_vs_single() {
        let lines = tokenize("align (:, *) with d :: a, b").unwrap();
        assert!(lines[0].toks.contains(&Tok::ColonColon));
        assert!(lines[0].toks.contains(&Tok::Colon));
    }

    #[test]
    fn case_is_folded() {
        let lines = tokenize("FORALL (K = 1:N)").unwrap();
        assert_eq!(lines[0].toks[0], Tok::Ident("forall".into()));
    }

    #[test]
    fn bad_char_is_reported_with_line() {
        let err = tokenize("x = 1\ny = $2").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains('$'));
    }

    #[test]
    fn triplet_tokens() {
        let lines = tokenize("a(1:n:2, j)").unwrap();
        let colons = lines[0].toks.iter().filter(|t| **t == Tok::Colon).count();
        assert_eq!(colons, 2);
    }
}
