//! # hpf — a mini High Performance Fortran front end
//!
//! Parses the HPF subset the paper compiles (its Figure 3 program parses
//! verbatim, modulo an explicit `*` the scanned paper dropped):
//!
//! * `parameter (name=value, …)` integer constants;
//! * `real a(n,n), …` array declarations;
//! * `!hpf$ processors P(np)` / `!hpf$ template t(n)` /
//!   `!hpf$ distribute t(block) on P` (also `cyclic`, `cyclic(b)`, `*`, and
//!   direct `distribute a(block, *) on P`) /
//!   `!hpf$ align (*,:) with t :: a, b`;
//! * `do v = lo, hi` … `end do` sequential loops;
//! * `forall (i=lo:hi, …)` … `end forall` parallel loops;
//! * array assignments with triplet sections `a(1:n, j)` and the `SUM`
//!   reduction intrinsic.
//!
//! Semantic analysis ([`sema::analyze`]) resolves parameters, shapes,
//! alignment and distribution directives into concrete
//! [`ooc_array::Distribution`]s — the information the out-of-core compiler's
//! in-core phase starts from.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;

pub use ast::{AlignDim, BinOp, Directive, DistSpec, Expr, Program, Stmt, Subscript};
pub use error::{FrontError, FrontResult};
pub use parser::parse_program;
pub use pretty::pretty_print;
pub use sema::{analyze, ArrayInfo, ProgramInfo};

/// The paper's Figure 3: GAXPY matrix multiplication in HPF. Parsing and
/// compiling this program end-to-end is the reference use of this crate.
pub const GAXPY_SOURCE: &str = r#"
      parameter (n=64, nprocs=4)
      real a(n,n), b(n,n), c(n,n), temp(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, c, temp
!hpf$ align (:,*) with d :: b
      do j = 1, n
        forall (k = 1:n)
          temp(1:n, k) = b(k, j) * a(1:n, k)
        end forall
        c(1:n, j) = sum(temp, 2)
      end do
      end
"#;

/// Out-of-core CSR sparse matrix–vector multiplication: the irregular
/// `x(colidx(k))` gather drives the inspector–executor subsystem. The
/// bounds of the inner loop come from the `rowptr` array, so neither the
/// iteration counts nor the access pattern are compile-time affine.
pub const SPMV_SOURCE: &str = r#"
      parameter (n=64, nnz=512, nprocs=4)
      real y(n), x(n), rowptr(n+1)
      real colidx(nnz), vals(nnz)
!hpf$ processors pr(nprocs)
!hpf$ distribute y(block) on pr
!hpf$ distribute x(block) on pr
!hpf$ distribute rowptr(block) on pr
!hpf$ distribute colidx(block) on pr
!hpf$ distribute vals(block) on pr
      do i = 1, n
        y(i) = 0.0
        do k = rowptr(i), rowptr(i+1) - 1
          y(i) = y(i) + vals(k) * x(colidx(k))
        end do
      end do
      end
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_program_parses_and_analyzes() {
        let prog = parse_program(GAXPY_SOURCE).expect("parse");
        let info = analyze(&prog).expect("sema");
        assert_eq!(info.nprocs, 4);
        let a = info.array("a").unwrap();
        assert_eq!(a.shape.extents(), &[64, 64]);
        let b = info.array("b").unwrap();
        // a: (*, block); b: (block, *).
        assert_eq!(a.dist.local_shape(0).extents(), &[64, 16]);
        assert_eq!(b.dist.local_shape(0).extents(), &[16, 64]);
    }
}
