//! Recursive-descent parser over tokenized lines.

use crate::ast::*;
use crate::error::{FrontError, FrontResult};
use crate::lexer::{tokenize, Tok, TokLine};

/// Intrinsic function names recognized as calls rather than array
/// references.
pub const INTRINSICS: &[&str] = &["sum", "abs", "min", "max", "mod", "sqrt"];

/// Parse a full program.
pub fn parse_program(source: &str) -> FrontResult<Program> {
    let lines = tokenize(source)?;
    let mut prog = Program::default();
    // Stack of open blocks: (opener, partial statement list).
    enum Block {
        Do { var: String, lo: Expr, hi: Expr },
        Forall { indices: Vec<(String, Expr, Expr)> },
    }
    let mut stack: Vec<(Block, Vec<Stmt>)> = Vec::new();
    let mut done = false;

    let push_stmt =
        |stack: &mut Vec<(Block, Vec<Stmt>)>, prog: &mut Program, s: Stmt| match stack.last_mut() {
            Some((_, body)) => body.push(s),
            None => prog.stmts.push(s),
        };

    for line in &lines {
        if done {
            return Err(FrontError::new(
                line.line,
                "statement after final `end`".to_string(),
            ));
        }
        let mut cur = Cursor::new(line);
        if line.directive {
            prog.directives.push(parse_directive(&mut cur)?);
            cur.expect_end()?;
            continue;
        }
        match cur.peek_ident() {
            Some("parameter") => {
                cur.bump();
                cur.expect(Tok::LParen)?;
                loop {
                    let name = cur.expect_ident()?;
                    cur.expect(Tok::Eq)?;
                    let value = parse_expr(&mut cur)?;
                    prog.decls.push(Decl::Parameter { name, value });
                    if !cur.eat(Tok::Comma) {
                        break;
                    }
                }
                cur.expect(Tok::RParen)?;
                cur.expect_end()?;
            }
            Some("real") => {
                cur.bump();
                loop {
                    let name = cur.expect_ident()?;
                    cur.expect(Tok::LParen)?;
                    let mut dims = Vec::new();
                    loop {
                        dims.push(parse_expr(&mut cur)?);
                        if !cur.eat(Tok::Comma) {
                            break;
                        }
                    }
                    cur.expect(Tok::RParen)?;
                    prog.decls.push(Decl::Array { name, dims });
                    if !cur.eat(Tok::Comma) {
                        break;
                    }
                }
                cur.expect_end()?;
            }
            Some("do") => {
                cur.bump();
                let var = cur.expect_ident()?;
                cur.expect(Tok::Eq)?;
                let lo = parse_expr(&mut cur)?;
                cur.expect(Tok::Comma)?;
                let hi = parse_expr(&mut cur)?;
                cur.expect_end()?;
                stack.push((Block::Do { var, lo, hi }, Vec::new()));
            }
            Some("forall") => {
                cur.bump();
                cur.expect(Tok::LParen)?;
                let mut indices = Vec::new();
                loop {
                    let var = cur.expect_ident()?;
                    cur.expect(Tok::Eq)?;
                    let lo = parse_expr(&mut cur)?;
                    cur.expect(Tok::Colon)?;
                    let hi = parse_expr(&mut cur)?;
                    indices.push((var, lo, hi));
                    if !cur.eat(Tok::Comma) {
                        break;
                    }
                }
                cur.expect(Tok::RParen)?;
                cur.expect_end()?;
                stack.push((Block::Forall { indices }, Vec::new()));
            }
            Some("enddo") => {
                cur.bump();
                cur.expect_end()?;
                close_block(&mut stack, &mut prog, line.line, "do")?;
            }
            Some("end") => {
                cur.bump();
                match cur.peek_ident() {
                    Some("do") => {
                        cur.bump();
                        cur.expect_end()?;
                        close_block(&mut stack, &mut prog, line.line, "do")?;
                    }
                    Some("forall") => {
                        cur.bump();
                        cur.expect_end()?;
                        close_block(&mut stack, &mut prog, line.line, "forall")?;
                    }
                    None => {
                        cur.expect_end()?;
                        if let Some((_, _)) = stack.last() {
                            return Err(FrontError::new(
                                line.line,
                                "`end` with unclosed do/forall block".to_string(),
                            ));
                        }
                        done = true;
                    }
                    Some(other) => {
                        return Err(FrontError::new(
                            line.line,
                            format!("unexpected `end {other}`"),
                        ))
                    }
                }
            }
            _ => {
                // Assignment statement.
                let lhs = parse_expr(&mut cur)?;
                cur.expect(Tok::Eq)?;
                let rhs = parse_expr(&mut cur)?;
                cur.expect_end()?;
                match lhs {
                    Expr::ArrayRef { .. } | Expr::Var(_) => {}
                    _ => {
                        return Err(FrontError::new(
                            line.line,
                            "left-hand side must be a variable or array reference".to_string(),
                        ))
                    }
                }
                push_stmt(
                    &mut stack,
                    &mut prog,
                    Stmt::Assign {
                        lhs,
                        rhs,
                        line: line.line,
                    },
                );
            }
        }
    }

    if let Some((_, _)) = stack.last() {
        return Err(FrontError::new(
            lines.last().map(|l| l.line).unwrap_or(0),
            "unclosed do/forall block at end of input".to_string(),
        ));
    }

    // Close over helper: rebuild blocks into statements.
    fn close_block(
        stack: &mut Vec<(Block, Vec<Stmt>)>,
        prog: &mut Program,
        line: usize,
        expect: &str,
    ) -> FrontResult<()> {
        let Some((block, body)) = stack.pop() else {
            return Err(FrontError::new(
                line,
                format!("`end {expect}` without block"),
            ));
        };
        let stmt = match block {
            Block::Do { var, lo, hi } => {
                if expect != "do" {
                    return Err(FrontError::new(
                        line,
                        format!("`end {expect}` closes a do block"),
                    ));
                }
                Stmt::Do { var, lo, hi, body }
            }
            Block::Forall { indices } => {
                if expect != "forall" {
                    return Err(FrontError::new(
                        line,
                        format!("`end {expect}` closes a forall block"),
                    ));
                }
                Stmt::Forall { indices, body }
            }
        };
        match stack.last_mut() {
            Some((_, parent)) => parent.push(stmt),
            None => prog.stmts.push(stmt),
        }
        Ok(())
    }

    Ok(prog)
}

fn parse_directive(cur: &mut Cursor<'_>) -> FrontResult<Directive> {
    let kw = cur.expect_ident()?;
    match kw.as_str() {
        "processors" => {
            let name = cur.expect_ident()?;
            cur.expect(Tok::LParen)?;
            let mut extents = Vec::new();
            loop {
                extents.push(parse_expr(cur)?);
                if !cur.eat(Tok::Comma) {
                    break;
                }
            }
            cur.expect(Tok::RParen)?;
            Ok(Directive::Processors { name, extents })
        }
        "template" => {
            let name = cur.expect_ident()?;
            cur.expect(Tok::LParen)?;
            let mut extents = Vec::new();
            loop {
                extents.push(parse_expr(cur)?);
                if !cur.eat(Tok::Comma) {
                    break;
                }
            }
            cur.expect(Tok::RParen)?;
            Ok(Directive::Template { name, extents })
        }
        "distribute" => {
            let target = cur.expect_ident()?;
            cur.expect(Tok::LParen)?;
            let mut specs = Vec::new();
            loop {
                specs.push(parse_dist_spec(cur)?);
                if !cur.eat(Tok::Comma) {
                    break;
                }
            }
            cur.expect(Tok::RParen)?;
            let on = cur.expect_ident()?;
            if on != "on" {
                return Err(cur.err(format!("expected `on`, found `{on}`")));
            }
            let procs = cur.expect_ident()?;
            Ok(Directive::Distribute {
                target,
                specs,
                procs,
            })
        }
        "align" => {
            cur.expect(Tok::LParen)?;
            let mut pattern = Vec::new();
            loop {
                if cur.eat(Tok::Star) {
                    pattern.push(AlignDim::Star);
                } else if cur.eat(Tok::Colon) {
                    pattern.push(AlignDim::Colon);
                } else {
                    return Err(cur.err("expected `*` or `:` in align pattern".to_string()));
                }
                if !cur.eat(Tok::Comma) {
                    break;
                }
            }
            cur.expect(Tok::RParen)?;
            let with = cur.expect_ident()?;
            if with != "with" {
                return Err(cur.err(format!("expected `with`, found `{with}`")));
            }
            let template = cur.expect_ident()?;
            cur.expect(Tok::ColonColon)?;
            let mut arrays = Vec::new();
            loop {
                arrays.push(cur.expect_ident()?);
                if !cur.eat(Tok::Comma) {
                    break;
                }
            }
            Ok(Directive::Align {
                pattern,
                template,
                arrays,
            })
        }
        other => Err(cur.err(format!("unknown directive `{other}`"))),
    }
}

fn parse_dist_spec(cur: &mut Cursor<'_>) -> FrontResult<DistSpec> {
    if cur.eat(Tok::Star) {
        return Ok(DistSpec::Star);
    }
    let kw = cur.expect_ident()?;
    match kw.as_str() {
        "block" => Ok(DistSpec::Block),
        "cyclic" => {
            if cur.eat(Tok::LParen) {
                let b = match cur.bump() {
                    Some(Tok::Int(v)) => *v,
                    _ => return Err(cur.err("expected block size in cyclic(b)".to_string())),
                };
                cur.expect(Tok::RParen)?;
                Ok(DistSpec::CyclicBlock(b))
            } else {
                Ok(DistSpec::Cyclic)
            }
        }
        other => Err(cur.err(format!("unknown distribution format `{other}`"))),
    }
}

/// Expression grammar: `expr := term (("+"|"-") term)*`,
/// `term := factor (("*"|"/") factor)*`, `factor := ["-"] primary`.
fn parse_expr(cur: &mut Cursor<'_>) -> FrontResult<Expr> {
    let mut lhs = parse_term(cur)?;
    loop {
        if cur.eat(Tok::Plus) {
            let rhs = parse_term(cur)?;
            lhs = Expr::bin(BinOp::Add, lhs, rhs);
        } else if cur.eat(Tok::Minus) {
            let rhs = parse_term(cur)?;
            lhs = Expr::bin(BinOp::Sub, lhs, rhs);
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_term(cur: &mut Cursor<'_>) -> FrontResult<Expr> {
    let mut lhs = parse_factor(cur)?;
    loop {
        if cur.eat(Tok::Star) {
            let rhs = parse_factor(cur)?;
            lhs = Expr::bin(BinOp::Mul, lhs, rhs);
        } else if cur.eat(Tok::Slash) {
            let rhs = parse_factor(cur)?;
            lhs = Expr::bin(BinOp::Div, lhs, rhs);
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_factor(cur: &mut Cursor<'_>) -> FrontResult<Expr> {
    if cur.eat(Tok::Minus) {
        let inner = parse_factor(cur)?;
        return Ok(Expr::Neg(Box::new(inner)));
    }
    parse_primary(cur)
}

fn parse_primary(cur: &mut Cursor<'_>) -> FrontResult<Expr> {
    match cur.bump() {
        Some(Tok::Int(v)) => Ok(Expr::Int(*v)),
        Some(Tok::Real(v)) => Ok(Expr::Real(*v)),
        Some(Tok::LParen) => {
            let e = parse_expr(cur)?;
            cur.expect(Tok::RParen)?;
            Ok(e)
        }
        Some(Tok::Ident(name)) => {
            let name = name.clone();
            if cur.eat(Tok::LParen) {
                if INTRINSICS.contains(&name.as_str()) {
                    let mut args = Vec::new();
                    loop {
                        args.push(parse_expr(cur)?);
                        if !cur.eat(Tok::Comma) {
                            break;
                        }
                    }
                    cur.expect(Tok::RParen)?;
                    Ok(Expr::Call { name, args })
                } else {
                    let mut subs = Vec::new();
                    loop {
                        subs.push(parse_subscript(cur)?);
                        if !cur.eat(Tok::Comma) {
                            break;
                        }
                    }
                    cur.expect(Tok::RParen)?;
                    Ok(Expr::ArrayRef { name, subs })
                }
            } else {
                Ok(Expr::Var(name))
            }
        }
        other => Err(cur.err(format!(
            "expected expression, found {}",
            other
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of line".into())
        ))),
    }
}

fn parse_subscript(cur: &mut Cursor<'_>) -> FrontResult<Subscript> {
    // `:` or `lo:` or `:hi` or `lo:hi[:step]` or plain index expression.
    let lo = if cur.at(Tok::Colon) {
        None
    } else {
        Some(parse_expr(cur)?)
    };
    if cur.eat(Tok::Colon) {
        let hi = if cur.at(Tok::Colon) || cur.at(Tok::Comma) || cur.at(Tok::RParen) {
            None
        } else {
            Some(parse_expr(cur)?)
        };
        let step = if cur.eat(Tok::Colon) {
            Some(parse_expr(cur)?)
        } else {
            None
        };
        Ok(Subscript::Triplet { lo, hi, step })
    } else {
        // `lo` is only None when the subscript started with `:`, and that
        // path always takes the triplet branch above; guard anyway so a
        // malformed token stream surfaces as a diagnostic, not a panic.
        match lo {
            Some(e) => Ok(Subscript::Index(e)),
            None => Err(cur.err("expected index expression".into())),
        }
    }
}

/// Token cursor over one line.
struct Cursor<'a> {
    line: &'a TokLine,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a TokLine) -> Self {
        Cursor { line, pos: 0 }
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.line.toks.get(self.pos)
    }

    fn peek_ident(&self) -> Option<&'a str> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn at(&self, t: Tok) -> bool {
        self.peek() == Some(&t)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.line.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if self.at(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> FrontResult<()> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{t}`, found {}",
                self.peek()
                    .map(|x| format!("`{x}`"))
                    .unwrap_or_else(|| "end of line".into())
            )))
        }
    }

    fn expect_ident(&mut self) -> FrontResult<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s.clone()),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of line".into())
            ))),
        }
    }

    fn expect_end(&mut self) -> FrontResult<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("unexpected trailing `{t}`"))),
        }
    }

    fn err(&self, message: String) -> FrontError {
        FrontError::new(self.line.line, message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure3() {
        let prog = parse_program(crate::GAXPY_SOURCE).unwrap();
        assert_eq!(prog.decls.len(), 2 + 4); // 2 parameters + 4 arrays
        assert_eq!(prog.directives.len(), 5);
        assert_eq!(prog.stmts.len(), 1);
        let Stmt::Do { var, body, .. } = &prog.stmts[0] else {
            panic!("outer statement should be a do loop");
        };
        assert_eq!(var, "j");
        assert_eq!(body.len(), 2); // forall + sum assignment
        assert!(matches!(body[0], Stmt::Forall { .. }));
    }

    #[test]
    fn nested_blocks() {
        let src = "
      do i = 1, 4
        do j = 1, 4
          a(i, j) = i + j
        end do
      end do
      end
";
        let prog = parse_program(src).unwrap();
        let Stmt::Do { body, .. } = &prog.stmts[0] else {
            panic!()
        };
        assert!(matches!(&body[0], Stmt::Do { .. }));
    }

    #[test]
    fn enddo_spelling() {
        let src = "
      do i = 1, 4
        a(i) = i
      enddo
      end
";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn triplets_parse() {
        let prog = parse_program("a(1:n, :, 2:8:2) = 0\nend\n").unwrap();
        let Stmt::Assign { lhs, .. } = &prog.stmts[0] else {
            panic!()
        };
        let Expr::ArrayRef { subs, .. } = lhs else {
            panic!()
        };
        assert!(matches!(
            subs[0],
            Subscript::Triplet {
                lo: Some(_),
                hi: Some(_),
                step: None
            }
        ));
        assert!(matches!(
            subs[1],
            Subscript::Triplet {
                lo: None,
                hi: None,
                step: None
            }
        ));
        assert!(matches!(subs[2], Subscript::Triplet { step: Some(_), .. }));
    }

    #[test]
    fn precedence_and_unary_minus() {
        let prog = parse_program("x = -a + b * c\nend\n").unwrap();
        let Stmt::Assign { rhs, .. } = &prog.stmts[0] else {
            panic!()
        };
        // (-a) + (b*c)
        let Expr::Bin(BinOp::Add, l, r) = rhs else {
            panic!("top must be +, got {rhs:?}")
        };
        assert!(matches!(**l, Expr::Neg(_)));
        assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parenthesized_grouping() {
        let prog = parse_program("x = (a + b) * c\nend\n").unwrap();
        let Stmt::Assign { rhs, .. } = &prog.stmts[0] else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn sum_is_a_call() {
        let prog = parse_program("c(1:n, j) = sum(temp, 2)\nend\n").unwrap();
        let Stmt::Assign { rhs, .. } = &prog.stmts[0] else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Call { name, .. } if name == "sum"));
    }

    #[test]
    fn unclosed_block_is_an_error() {
        let err = parse_program("do i = 1, 4\na(i) = 0\n").unwrap_err();
        assert!(err.message.contains("unclosed"));
    }

    #[test]
    fn mismatched_end_is_an_error() {
        let err = parse_program("forall (i = 1:4)\na(i) = 0\nend do\nend\n").unwrap_err();
        assert!(err.message.contains("closes"));
    }

    #[test]
    fn distribute_direct_array_form() {
        let prog = parse_program("!hpf$ processors p(4)\n!hpf$ distribute a(block, *) on p\nend\n")
            .unwrap();
        let Directive::Distribute {
            target,
            specs,
            procs,
        } = &prog.directives[1]
        else {
            panic!()
        };
        assert_eq!(target, "a");
        assert_eq!(specs, &vec![DistSpec::Block, DistSpec::Star]);
        assert_eq!(procs, "p");
    }

    #[test]
    fn cyclic_with_block_size() {
        let prog = parse_program("!hpf$ distribute a(cyclic(4)) on p\nend\n").unwrap();
        let Directive::Distribute { specs, .. } = &prog.directives[0] else {
            panic!()
        };
        assert_eq!(specs[0], DistSpec::CyclicBlock(4));
    }

    #[test]
    fn statement_after_end_rejected() {
        let err = parse_program("end\nx = 1\n").unwrap_err();
        assert!(err.message.contains("after final"));
    }
}
