//! Abstract syntax for the mini-HPF subset.

use serde::{Deserialize, Serialize};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Expressions (scalar context) and array references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Scalar variable or parameter reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Array element / section reference: `a(subs…)`.
    ArrayRef {
        /// Array name (lower-cased).
        name: String,
        /// One subscript per dimension.
        subs: Vec<Subscript>,
    },
    /// Intrinsic call, e.g. `sum(temp, 2)`.
    Call {
        /// Intrinsic name (lower-cased).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Shorthand for a binary operation.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }
}

/// One subscript of an array reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Subscript {
    /// A single index expression.
    Index(Expr),
    /// A triplet section `lo:hi[:step]`; omitted bounds mean the full
    /// extent.
    Triplet {
        /// Lower bound (inclusive, 1-based in source).
        lo: Option<Expr>,
        /// Upper bound (inclusive, 1-based in source).
        hi: Option<Expr>,
        /// Stride.
        step: Option<Expr>,
    },
}

/// Distribution format for one dimension in a DISTRIBUTE directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistSpec {
    /// `block`
    Block,
    /// `cyclic`
    Cyclic,
    /// `cyclic(b)`
    CyclicBlock(i64),
    /// `*` — collapsed.
    Star,
}

/// One dimension of an ALIGN source pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignDim {
    /// `*` — this array dimension is not aligned with the template
    /// (collapsed onto every owner).
    Star,
    /// `:` — matched with the next template dimension in order.
    Colon,
}

/// HPF compiler directives (`!hpf$ …`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Directive {
    /// `processors p(n…)`
    Processors {
        /// Grid name.
        name: String,
        /// Axis extents.
        extents: Vec<Expr>,
    },
    /// `template t(n…)`
    Template {
        /// Template name.
        name: String,
        /// Extents.
        extents: Vec<Expr>,
    },
    /// `distribute t(spec…) on p` — target may be a template or an array.
    Distribute {
        /// Template or array name.
        target: String,
        /// One spec per dimension.
        specs: Vec<DistSpec>,
        /// Processor grid name.
        procs: String,
    },
    /// `align (pattern) with t :: a, b, …`
    Align {
        /// Source pattern, one entry per array dimension.
        pattern: Vec<AlignDim>,
        /// Template name.
        template: String,
        /// Arrays aligned by this directive.
        arrays: Vec<String>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `do v = lo, hi` … `end do`
    Do {
        /// Loop variable.
        var: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (inclusive).
        hi: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `forall (i = lo:hi, …)` … `end forall` (or single-statement forall).
    Forall {
        /// Index variables with inclusive bounds.
        indices: Vec<(String, Expr, Expr)>,
        /// Body (assignments only, per HPF rules).
        body: Vec<Stmt>,
    },
    /// Array or scalar assignment.
    Assign {
        /// Left-hand side (an `Expr::ArrayRef` or `Expr::Var`).
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
        /// 1-based source line, for diagnostics.
        line: usize,
    },
}

/// One declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decl {
    /// `parameter (name=value, …)` — one entry per constant.
    Parameter {
        /// Constant name.
        name: String,
        /// Constant value expression (must fold to an integer).
        value: Expr,
    },
    /// `real a(d…, …)` — one entry per declared array.
    Array {
        /// Array name.
        name: String,
        /// Declared extents.
        dims: Vec<Expr>,
    },
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Declarations in source order.
    pub decls: Vec<Decl>,
    /// Directives in source order.
    pub directives: Vec<Directive>,
    /// Executable statements in source order.
    pub stmts: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::bin(BinOp::Add, Expr::var("i"), Expr::Int(1));
        match e {
            Expr::Bin(BinOp::Add, l, r) => {
                assert_eq!(*l, Expr::Var("i".into()));
                assert_eq!(*r, Expr::Int(1));
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Add.symbol(), "+");
        assert_eq!(BinOp::Sub.symbol(), "-");
        assert_eq!(BinOp::Mul.symbol(), "*");
        assert_eq!(BinOp::Div.symbol(), "/");
    }
}
