//! Semantic analysis: parameters, shapes, directives → distributions.
//!
//! This performs the front half of the paper's "in-core phase" (Figure 7):
//! using the distribution directives, every declared array is given a
//! concrete [`Distribution`] over a concrete processor grid, and all
//! declared extents are folded to integers. Alignment with a template is
//! resolved transitively: `align (*,:) with d` where `d` is
//! `distribute d(block)` yields a `(*, block)` distribution.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ooc_array::{DimDist, DistKind, Distribution, ProcGrid, Shape};

use crate::ast::*;
use crate::error::{FrontError, FrontResult};

/// Resolved information about one declared array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayInfo {
    /// Array name.
    pub name: String,
    /// Concrete shape.
    pub shape: Shape,
    /// Concrete distribution.
    pub dist: Distribution,
}

/// Result of semantic analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramInfo {
    /// Integer parameters (`parameter` declarations), by name.
    pub params: HashMap<String, i64>,
    /// Declared arrays in declaration order.
    pub arrays: Vec<ArrayInfo>,
    /// Total processors of the (single) processor grid.
    pub nprocs: usize,
    /// Executable statements (unchanged from the AST).
    pub stmts: Vec<Stmt>,
}

impl ProgramInfo {
    /// Look up an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayInfo> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Fold an expression to an integer using the parameter environment.
    pub fn eval_const(&self, e: &Expr) -> FrontResult<i64> {
        eval_const(e, &self.params)
    }
}

/// Fold `e` to an integer given parameter bindings.
pub fn eval_const(e: &Expr, params: &HashMap<String, i64>) -> FrontResult<i64> {
    match e {
        Expr::Int(v) => Ok(*v),
        Expr::Real(_) => Err(FrontError::new(0, "real literal in constant context")),
        Expr::Var(name) => params
            .get(name)
            .copied()
            .ok_or_else(|| FrontError::new(0, format!("`{name}` is not a constant parameter"))),
        Expr::Neg(inner) => Ok(-eval_const(inner, params)?),
        Expr::Bin(op, l, r) => {
            let a = eval_const(l, params)?;
            let b = eval_const(r, params)?;
            Ok(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0 {
                        return Err(FrontError::new(0, "division by zero in constant"));
                    }
                    a / b
                }
            })
        }
        Expr::ArrayRef { name, .. } | Expr::Call { name, .. } => Err(FrontError::new(
            0,
            format!("`{name}` reference is not constant"),
        )),
    }
}

struct TemplateInfo {
    extents: Vec<usize>,
    specs: Option<(Vec<DistSpec>, String)>, // distribution specs + grid name
}

/// Analyze a parsed program.
pub fn analyze(prog: &Program) -> FrontResult<ProgramInfo> {
    let mut params: HashMap<String, i64> = HashMap::new();
    let mut declared: Vec<(String, Vec<usize>)> = Vec::new();

    for decl in &prog.decls {
        match decl {
            Decl::Parameter { name, value } => {
                let v = eval_const(value, &params)?;
                if params.insert(name.clone(), v).is_some() {
                    return Err(FrontError::new(0, format!("parameter `{name}` redefined")));
                }
            }
            Decl::Array { name, dims } => {
                let mut extents = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = eval_const(d, &params)?;
                    if v <= 0 {
                        return Err(FrontError::new(
                            0,
                            format!("array `{name}` has non-positive extent {v}"),
                        ));
                    }
                    extents.push(v as usize);
                }
                if declared.iter().any(|(n, _)| n == name) {
                    return Err(FrontError::new(0, format!("array `{name}` redeclared")));
                }
                declared.push((name.clone(), extents));
            }
        }
    }

    // Directives.
    let mut grids: HashMap<String, Vec<usize>> = HashMap::new();
    let mut templates: HashMap<String, TemplateInfo> = HashMap::new();
    // name -> (specs, grid) from direct `distribute a(...) on p`.
    let mut direct_dist: HashMap<String, (Vec<DistSpec>, String)> = HashMap::new();
    // array -> (pattern, template) from align.
    let mut aligns: HashMap<String, (Vec<AlignDim>, String)> = HashMap::new();

    for dir in &prog.directives {
        match dir {
            Directive::Processors { name, extents } => {
                let exts: Vec<usize> = extents
                    .iter()
                    .map(|e| {
                        let v = eval_const(e, &params)?;
                        if v <= 0 {
                            return Err(FrontError::new(
                                0,
                                format!("processor grid `{name}` axis must be positive"),
                            ));
                        }
                        Ok(v as usize)
                    })
                    .collect::<FrontResult<_>>()?;
                grids.insert(name.clone(), exts);
            }
            Directive::Template { name, extents } => {
                let exts: Vec<usize> = extents
                    .iter()
                    .map(|e| eval_const(e, &params).map(|v| v as usize))
                    .collect::<FrontResult<_>>()?;
                templates.insert(
                    name.clone(),
                    TemplateInfo {
                        extents: exts,
                        specs: None,
                    },
                );
            }
            Directive::Distribute {
                target,
                specs,
                procs,
            } => {
                if let Some(t) = templates.get_mut(target) {
                    if specs.len() != t.extents.len() {
                        return Err(FrontError::new(
                            0,
                            format!("distribute rank mismatch for template `{target}`"),
                        ));
                    }
                    t.specs = Some((specs.clone(), procs.clone()));
                } else if declared.iter().any(|(n, _)| n == target) {
                    direct_dist.insert(target.clone(), (specs.clone(), procs.clone()));
                } else {
                    return Err(FrontError::new(
                        0,
                        format!("distribute target `{target}` is neither template nor array"),
                    ));
                }
            }
            Directive::Align {
                pattern,
                template,
                arrays,
            } => {
                if !templates.contains_key(template) {
                    return Err(FrontError::new(
                        0,
                        format!("align references unknown template `{template}`"),
                    ));
                }
                for a in arrays {
                    aligns.insert(a.clone(), (pattern.clone(), template.clone()));
                }
            }
        }
    }

    // Every program in this subset uses a single processor grid.
    if grids.len() != 1 {
        return Err(FrontError::new(
            0,
            format!(
                "expected exactly one processors directive, found {}",
                grids.len()
            ),
        ));
    }
    let (_grid_name, grid_extents) = grids.iter().next().expect("one grid");
    let grid = ProcGrid::new(grid_extents.clone());
    let nprocs = grid.nprocs();

    // Resolve each declared array.
    let mut arrays = Vec::with_capacity(declared.len());
    for (name, extents) in &declared {
        let shape = Shape::new(extents.clone());
        let dist = if let Some((specs, procs)) = direct_dist.get(name) {
            check_grid(procs, &grids)?;
            dist_from_specs(&shape, specs, &grid, name)?
        } else if let Some((pattern, template)) = aligns.get(name) {
            let t = templates.get(template).expect("checked");
            let Some((tspecs, procs)) = &t.specs else {
                return Err(FrontError::new(
                    0,
                    format!("template `{template}` used by `{name}` was never distributed"),
                ));
            };
            check_grid(procs, &grids)?;
            if pattern.len() != shape.ndims() {
                return Err(FrontError::new(
                    0,
                    format!("align pattern rank mismatch for `{name}`"),
                ));
            }
            // Map ':' entries to template dimensions in order.
            let matched: Vec<usize> = pattern
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, AlignDim::Colon))
                .map(|(d, _)| d)
                .collect();
            if matched.len() != t.extents.len() {
                return Err(FrontError::new(
                    0,
                    format!(
                        "align pattern for `{name}` matches {} dims, template `{template}` has {}",
                        matched.len(),
                        t.extents.len()
                    ),
                ));
            }
            // Aligned dims must have the template extent.
            for (tdim, &adim) in matched.iter().enumerate() {
                if shape.extent(adim) != t.extents[tdim] {
                    return Err(FrontError::new(
                        0,
                        format!(
                            "array `{name}` dim {adim} extent {} does not match template `{template}` extent {}",
                            shape.extent(adim),
                            t.extents[tdim]
                        ),
                    ));
                }
            }
            // Build per-dimension specs: '*' dims collapsed, ':' dims take
            // the template's spec for the corresponding template dim.
            let mut specs = vec![DistSpec::Star; shape.ndims()];
            for (tdim, &adim) in matched.iter().enumerate() {
                specs[adim] = tspecs[tdim].clone();
            }
            dist_from_specs(&shape, &specs, &grid, name)?
        } else {
            return Err(FrontError::new(
                0,
                format!("array `{name}` has no distribution (missing align/distribute)"),
            ));
        };
        arrays.push(ArrayInfo {
            name: name.clone(),
            shape,
            dist,
        });
    }

    let info = ProgramInfo {
        params,
        arrays,
        nprocs,
        stmts: prog.stmts.clone(),
    };
    for stmt in &info.stmts {
        check_indirect_stmt(stmt, 0, &info)?;
    }
    Ok(info)
}

/// Walk one statement checking every indirect subscript (`a(idx(i))`).
///
/// `line` is the nearest enclosing source line known for this statement
/// (assignments carry their own; do/forall bounds inherit).
fn check_indirect_stmt(stmt: &Stmt, line: usize, info: &ProgramInfo) -> FrontResult<()> {
    match stmt {
        Stmt::Assign { lhs, rhs, line } => {
            check_indirect_expr(lhs, None, *line, info)?;
            check_indirect_expr(rhs, None, *line, info)
        }
        Stmt::Do { lo, hi, body, .. } => {
            check_indirect_expr(lo, None, line, info)?;
            check_indirect_expr(hi, None, line, info)?;
            body.iter()
                .try_for_each(|s| check_indirect_stmt(s, line, info))
        }
        Stmt::Forall { indices, body } => {
            for (_, lo, hi) in indices {
                check_indirect_expr(lo, None, line, info)?;
                check_indirect_expr(hi, None, line, info)?;
            }
            body.iter()
                .try_for_each(|s| check_indirect_stmt(s, line, info))
        }
    }
}

/// Walk an expression; `encl` is `Some(outer)` while inside a subscript of
/// array `outer`, so any array reference found there is an indirection
/// array and must be inspector-compatible: declared, one-dimensional, and
/// block-distributed (the runtime inspector bins gather targets by block
/// owner, so any other layout would make the owner computation wrong).
fn check_indirect_expr(
    e: &Expr,
    encl: Option<&str>,
    line: usize,
    info: &ProgramInfo,
) -> FrontResult<()> {
    match e {
        Expr::Int(_) | Expr::Real(_) | Expr::Var(_) => Ok(()),
        Expr::Neg(inner) => check_indirect_expr(inner, encl, line, info),
        Expr::Bin(_, l, r) => {
            check_indirect_expr(l, encl, line, info)?;
            check_indirect_expr(r, encl, line, info)
        }
        // Intrinsic arguments are value context, not subscripts.
        Expr::Call { args, .. } => args
            .iter()
            .try_for_each(|a| check_indirect_expr(a, None, line, info)),
        Expr::ArrayRef { name, subs } => {
            if let Some(outer) = encl {
                check_indirection_array(name, outer, line, info)?;
            }
            for s in subs {
                let parts: [&Option<Expr>; 3] = match s {
                    Subscript::Index(idx) => {
                        check_indirect_expr(idx, Some(name), line, info)?;
                        continue;
                    }
                    Subscript::Triplet { lo, hi, step } => [lo, hi, step],
                };
                for part in parts.into_iter().flatten() {
                    check_indirect_expr(part, Some(name), line, info)?;
                }
            }
            Ok(())
        }
    }
}

/// Validate one indirection array `idx` used as `outer(… idx(…) …)`.
fn check_indirection_array(
    idx: &str,
    outer: &str,
    line: usize,
    info: &ProgramInfo,
) -> FrontResult<()> {
    let Some(arr) = info.array(idx) else {
        return Err(FrontError::new(
            line,
            format!("indirection array `{idx}` in subscript of `{outer}` is not a declared array"),
        ));
    };
    if arr.shape.ndims() != 1 {
        return Err(FrontError::new(
            line,
            format!(
                "indirection array `{idx}` in subscript of `{outer}` must be one-dimensional, \
                 has {} dimensions",
                arr.shape.ndims()
            ),
        ));
    }
    match arr.dist.dims()[0] {
        DimDist::Distributed {
            kind: DistKind::Block,
            ..
        } => Ok(()),
        ref other => {
            let found = match other {
                DimDist::Collapsed => "collapsed (replicated)".to_string(),
                DimDist::Distributed {
                    kind: DistKind::Cyclic,
                    ..
                } => "cyclic".to_string(),
                DimDist::Distributed {
                    kind: DistKind::BlockCyclic(b),
                    ..
                } => format!("cyclic({b})"),
                DimDist::Distributed {
                    kind: DistKind::Block,
                    ..
                } => unreachable!("handled above"),
            };
            Err(FrontError::new(
                line,
                format!(
                    "indirection array `{idx}` in subscript of `{outer}` is not \
                     distribution-compatible: the inspector bins gather targets by block \
                     owner, so `{idx}` must be block-distributed, found {found}"
                ),
            ))
        }
    }
}

fn check_grid(procs: &str, grids: &HashMap<String, Vec<usize>>) -> FrontResult<()> {
    if grids.contains_key(procs) {
        Ok(())
    } else {
        Err(FrontError::new(
            0,
            format!("unknown processor grid `{procs}`"),
        ))
    }
}

fn dist_from_specs(
    shape: &Shape,
    specs: &[DistSpec],
    grid: &ProcGrid,
    name: &str,
) -> FrontResult<Distribution> {
    if specs.len() != shape.ndims() {
        return Err(FrontError::new(
            0,
            format!("distribution rank mismatch for `{name}`"),
        ));
    }
    let mut dims = Vec::with_capacity(specs.len());
    let mut next_axis = 0usize;
    for spec in specs {
        let dd = match spec {
            DistSpec::Star => DimDist::Collapsed,
            DistSpec::Block => {
                let axis = next_axis;
                next_axis += 1;
                DimDist::Distributed {
                    kind: DistKind::Block,
                    axis,
                }
            }
            DistSpec::Cyclic => {
                let axis = next_axis;
                next_axis += 1;
                DimDist::Distributed {
                    kind: DistKind::Cyclic,
                    axis,
                }
            }
            DistSpec::CyclicBlock(b) => {
                if *b <= 0 {
                    return Err(FrontError::new(
                        0,
                        format!("array `{name}` has non-positive cyclic block size {b}"),
                    ));
                }
                let axis = next_axis;
                next_axis += 1;
                DimDist::Distributed {
                    kind: DistKind::BlockCyclic(*b as usize),
                    axis,
                }
            }
        };
        dims.push(dd);
    }
    if next_axis != grid.naxes() {
        return Err(FrontError::new(
            0,
            format!(
                "array `{name}` distributes {next_axis} dims over a {}-axis grid",
                grid.naxes()
            ),
        ));
    }
    Ok(Distribution::new(shape.clone(), dims, grid.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze_src(src: &str) -> FrontResult<ProgramInfo> {
        analyze(&parse_program(src).expect("parse"))
    }

    #[test]
    fn figure3_distributions() {
        let info = analyze_src(crate::GAXPY_SOURCE).unwrap();
        assert_eq!(info.nprocs, 4);
        assert_eq!(info.params["n"], 64);
        assert_eq!(info.params["nprocs"], 4);
        // a, c, temp: (*, block); b: (block, *).
        for name in ["a", "c", "temp"] {
            let arr = info.array(name).unwrap();
            assert_eq!(arr.dist.local_shape(2).extents(), &[64, 16], "{name}");
            assert!(matches!(arr.dist.dims()[0], DimDist::Collapsed));
        }
        let b = info.array("b").unwrap();
        assert!(matches!(b.dist.dims()[1], DimDist::Collapsed));
    }

    #[test]
    fn direct_distribute_form() {
        let info = analyze_src(
            "
      parameter (n=8, p=2)
      real a(n, n)
!hpf$ processors pr(p)
!hpf$ distribute a(*, block) on pr
      end
",
        )
        .unwrap();
        let a = info.array("a").unwrap();
        assert_eq!(a.dist.local_shape(0).extents(), &[8, 4]);
    }

    #[test]
    fn cyclic_distribution() {
        let info = analyze_src(
            "
      parameter (n=10)
      real a(n)
!hpf$ processors pr(3)
!hpf$ distribute a(cyclic) on pr
      end
",
        )
        .unwrap();
        let a = info.array("a").unwrap();
        assert!(matches!(
            a.dist.dims()[0],
            DimDist::Distributed {
                kind: DistKind::Cyclic,
                ..
            }
        ));
    }

    #[test]
    fn missing_distribution_is_an_error() {
        let err = analyze_src(
            "
      real a(4)
!hpf$ processors pr(2)
      end
",
        )
        .unwrap_err();
        assert!(err.message.contains("no distribution"));
    }

    #[test]
    fn align_extent_mismatch_is_an_error() {
        let err = analyze_src(
            "
      parameter (n=8)
      real a(n, 7)
!hpf$ processors pr(2)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*, :) with d :: a
      end
",
        )
        .unwrap_err();
        assert!(err.message.contains("does not match template"));
    }

    #[test]
    fn undistributed_template_is_an_error() {
        let err = analyze_src(
            "
      parameter (n=8)
      real a(n)
!hpf$ processors pr(2)
!hpf$ template d(n)
!hpf$ align (:) with d :: a
      end
",
        )
        .unwrap_err();
        assert!(err.message.contains("never distributed"));
    }

    #[test]
    fn const_folding() {
        let info = analyze_src(
            "
      parameter (n=8, m=n*2+1)
      real a(m)
!hpf$ processors pr(1)
!hpf$ distribute a(block) on pr
      end
",
        )
        .unwrap();
        assert_eq!(info.params["m"], 17);
        assert_eq!(info.array("a").unwrap().shape.extents(), &[17]);
    }

    #[test]
    fn eval_const_errors() {
        let params = HashMap::new();
        assert!(eval_const(&Expr::var("zz"), &params).is_err());
        assert!(eval_const(&Expr::bin(BinOp::Div, Expr::Int(1), Expr::Int(0)), &params).is_err());
        assert_eq!(
            eval_const(&Expr::Neg(Box::new(Expr::Int(5))), &params).unwrap(),
            -5
        );
    }

    #[test]
    fn block_indirection_array_is_accepted() {
        // The shipped SpMV example indexes x through colidx; colidx is
        // block-distributed, so the whole program must pass sema.
        let info = analyze_src(crate::SPMV_SOURCE).unwrap();
        assert_eq!(info.nprocs, 4);
    }

    #[test]
    fn cyclic_indirection_array_is_rejected_with_its_line() {
        let err = analyze_src(
            "
      parameter (n=8)
      real a(n), idx(n)
!hpf$ processors pr(2)
!hpf$ distribute a(block) on pr
!hpf$ distribute idx(cyclic) on pr
      do i = 1, n
        a(i) = a(idx(i))
      end do
      end
",
        )
        .unwrap_err();
        assert!(
            err.message.contains("`idx`") && err.message.contains("block-distributed"),
            "{err}"
        );
        assert_eq!(err.line, 8, "diagnostic should carry the assignment line");
    }

    #[test]
    fn undeclared_indirection_array_is_rejected() {
        let err = analyze_src(
            "
      parameter (n=8)
      real a(n)
!hpf$ processors pr(2)
!hpf$ distribute a(block) on pr
      a(1) = a(ghost(1))
      end
",
        )
        .unwrap_err();
        assert!(
            err.message.contains("`ghost`") && err.message.contains("not a declared array"),
            "{err}"
        );
        assert_eq!(err.line, 6);
    }

    #[test]
    fn two_dimensional_indirection_array_is_rejected() {
        let err = analyze_src(
            "
      parameter (n=8)
      real a(n), idx(n, n)
!hpf$ processors pr(2)
!hpf$ distribute a(block) on pr
!hpf$ distribute idx(*, block) on pr
      a(1) = a(idx(1, 2))
      end
",
        )
        .unwrap_err();
        assert!(err.message.contains("one-dimensional"), "{err}");
    }

    #[test]
    fn indirection_inside_arithmetic_subscript_is_still_checked() {
        // `a(idx(i) + 1)` is just as indirect as `a(idx(i))`.
        let err = analyze_src(
            "
      parameter (n=8)
      real a(n), idx(n)
!hpf$ processors pr(2)
!hpf$ distribute a(block) on pr
!hpf$ distribute idx(cyclic) on pr
      a(1) = a(idx(1) + 1)
      end
",
        )
        .unwrap_err();
        assert!(err.message.contains("distribution-compatible"), "{err}");
    }

    #[test]
    fn two_grids_rejected() {
        let err = analyze_src(
            "
      real a(4)
!hpf$ processors p1(2)
!hpf$ processors p2(2)
!hpf$ distribute a(block) on p1
      end
",
        )
        .unwrap_err();
        assert!(err.message.contains("exactly one"));
    }
}
