//! Pretty printer: AST → canonical source text.
//!
//! `parse(pretty(parse(src)))` equals `parse(src)` — the round-trip property
//! the test suite checks on every construct.

use std::fmt::Write as _;

use crate::ast::*;

/// Render a whole program as canonical mini-HPF source.
pub fn pretty_print(prog: &Program) -> String {
    let mut out = String::new();
    // Parameters first, grouped into one statement.
    let params: Vec<&Decl> = prog
        .decls
        .iter()
        .filter(|d| matches!(d, Decl::Parameter { .. }))
        .collect();
    if !params.is_empty() {
        let body: Vec<String> = params
            .iter()
            .map(|d| match d {
                Decl::Parameter { name, value } => format!("{name}={}", expr(value)),
                _ => unreachable!(),
            })
            .collect();
        let _ = writeln!(out, "      parameter ({})", body.join(", "));
    }
    let arrays: Vec<String> = prog
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Array { name, dims } => {
                let ds: Vec<String> = dims.iter().map(expr).collect();
                Some(format!("{name}({})", ds.join(", ")))
            }
            _ => None,
        })
        .collect();
    if !arrays.is_empty() {
        let _ = writeln!(out, "      real {}", arrays.join(", "));
    }
    for d in &prog.directives {
        let _ = writeln!(out, "!hpf$ {}", directive(d));
    }
    for s in &prog.stmts {
        stmt(&mut out, s, 6);
    }
    out.push_str("      end\n");
    out
}

fn directive(d: &Directive) -> String {
    match d {
        Directive::Processors { name, extents } => {
            let es: Vec<String> = extents.iter().map(expr).collect();
            format!("processors {name}({})", es.join(", "))
        }
        Directive::Template { name, extents } => {
            let es: Vec<String> = extents.iter().map(expr).collect();
            format!("template {name}({})", es.join(", "))
        }
        Directive::Distribute {
            target,
            specs,
            procs,
        } => {
            let ss: Vec<String> = specs
                .iter()
                .map(|s| match s {
                    DistSpec::Block => "block".to_string(),
                    DistSpec::Cyclic => "cyclic".to_string(),
                    DistSpec::CyclicBlock(b) => format!("cyclic({b})"),
                    DistSpec::Star => "*".to_string(),
                })
                .collect();
            format!("distribute {target}({}) on {procs}", ss.join(", "))
        }
        Directive::Align {
            pattern,
            template,
            arrays,
        } => {
            let ps: Vec<&str> = pattern
                .iter()
                .map(|p| match p {
                    AlignDim::Star => "*",
                    AlignDim::Colon => ":",
                })
                .collect();
            format!(
                "align ({}) with {template} :: {}",
                ps.join(", "),
                arrays.join(", ")
            )
        }
    }
}

fn stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = " ".repeat(indent);
    match s {
        Stmt::Do { var, lo, hi, body } => {
            let _ = writeln!(out, "{pad}do {var} = {}, {}", expr(lo), expr(hi));
            for b in body {
                stmt(out, b, indent + 2);
            }
            let _ = writeln!(out, "{pad}end do");
        }
        Stmt::Forall { indices, body } => {
            let is: Vec<String> = indices
                .iter()
                .map(|(v, lo, hi)| format!("{v} = {}:{}", expr(lo), expr(hi)))
                .collect();
            let _ = writeln!(out, "{pad}forall ({})", is.join(", "));
            for b in body {
                stmt(out, b, indent + 2);
            }
            let _ = writeln!(out, "{pad}end forall");
        }
        Stmt::Assign { lhs, rhs, .. } => {
            let _ = writeln!(out, "{pad}{} = {}", expr(lhs), expr(rhs));
        }
    }
}

/// Render an expression with minimal but safe parenthesization.
pub fn expr(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Neg(inner) => {
            let s = format!("-{}", expr_prec(inner, 3));
            if parent > 0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Bin(op, l, r) => {
            let prec = match op {
                BinOp::Add | BinOp::Sub => 1,
                BinOp::Mul | BinOp::Div => 2,
            };
            // Right operand of - and / needs grouping at equal precedence.
            let s = format!(
                "{} {} {}",
                expr_prec(l, prec),
                op.symbol(),
                expr_prec(r, prec + 1)
            );
            if parent > prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::ArrayRef { name, subs } => {
            let ss: Vec<String> = subs.iter().map(subscript).collect();
            format!("{name}({})", ss.join(", "))
        }
        Expr::Call { name, args } => {
            let ss: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", ss.join(", "))
        }
    }
}

/// One-line description of a statement's head, for diagnostics
/// ("unsupported statement pattern: do j = 1, n").
pub fn expr_of_stmt_head(s: &Stmt) -> String {
    match s {
        Stmt::Do { var, lo, hi, .. } => format!("do {var} = {}, {}", expr(lo), expr(hi)),
        Stmt::Forall { indices, .. } => {
            let is: Vec<String> = indices
                .iter()
                .map(|(v, lo, hi)| format!("{v} = {}:{}", expr(lo), expr(hi)))
                .collect();
            format!("forall ({})", is.join(", "))
        }
        Stmt::Assign { lhs, rhs, .. } => format!("{} = {}", expr(lhs), expr(rhs)),
    }
}

fn subscript(s: &Subscript) -> String {
    match s {
        Subscript::Index(e) => expr(e),
        Subscript::Triplet { lo, hi, step } => {
            let l = lo.as_ref().map(expr).unwrap_or_default();
            let h = hi.as_ref().map(expr).unwrap_or_default();
            match step {
                Some(st) => format!("{l}:{h}:{}", expr(st)),
                None => format!("{l}:{h}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Zero out source locations: a round trip preserves structure, not
    /// the line layout of the original file.
    fn strip_lines(stmts: &mut [Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign { line, .. } => *line = 0,
                Stmt::Do { body, .. } | Stmt::Forall { body, .. } => strip_lines(body),
            }
        }
    }

    fn roundtrip(src: &str) {
        let mut p1 = parse_program(src).expect("first parse");
        let printed = pretty_print(&p1);
        let mut p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        strip_lines(&mut p1.stmts);
        strip_lines(&mut p2.stmts);
        assert_eq!(p1, p2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn roundtrip_figure3() {
        roundtrip(crate::GAXPY_SOURCE);
    }

    #[test]
    fn roundtrip_expressions() {
        roundtrip("x = -a + b * (c - d) / e\nend\n");
        roundtrip("x = a - (b - c)\nend\n");
        roundtrip("x = a / (b * c)\nend\n");
        roundtrip("x = 1.5 * a(i, j) + 2.0e3\nend\n");
    }

    #[test]
    fn roundtrip_triplets() {
        roundtrip("a(1:n, :, 2:8:2) = b(:, j, k)\nend\n");
    }

    #[test]
    fn roundtrip_directives() {
        roundtrip(
            "
      parameter (n=16)
      real a(n, n), b(n, n)
!hpf$ processors pr(4)
!hpf$ template d(n)
!hpf$ distribute d(cyclic) on pr
!hpf$ align (:, *) with d :: a
!hpf$ distribute b(*, cyclic(2)) on pr
      end
",
        );
    }

    #[test]
    fn roundtrip_nested_loops() {
        roundtrip(
            "
      do i = 1, 8
        forall (j = 1:8, k = 1:4)
          a(j, k) = a(j, k) + i
        end forall
      end do
      end
",
        );
    }

    #[test]
    fn negative_literal_in_context() {
        roundtrip("x = a * (-b)\nend\n");
    }
}
