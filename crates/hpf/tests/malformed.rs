//! Malformed-program regression corpus: every input here must come back as
//! a `FrontError` diagnostic — never a panic — from parse or sema.
//!
//! The frontend feeds the out-of-core compiler driver, which in turn runs
//! under the fault-injection harness; a panic on bad input would take down
//! a whole simulated machine instead of failing one compile.

use hpf::{analyze, parse_program};

/// Run the whole frontend; the value is the diagnostic (if any).
fn front(src: &str) -> Result<(), String> {
    let prog = parse_program(src).map_err(|e| e.to_string())?;
    analyze(&prog).map_err(|e| e.to_string())?;
    Ok(())
}

/// Assert the frontend rejects `src` with a diagnostic (no panic, no Ok).
#[track_caller]
fn rejects(src: &str) -> String {
    match std::panic::catch_unwind(|| front(src)) {
        Ok(Ok(())) => panic!("frontend accepted malformed program:\n{src}"),
        Ok(Err(diag)) => diag,
        Err(_) => panic!("frontend panicked on malformed program:\n{src}"),
    }
}

#[test]
fn truncated_expressions_are_diagnosed() {
    for src in [
        "x = \nend\n",
        "x = (\nend\n",
        "x = 1 +\nend\n",
        "x = * 2\nend\n",
        "x = a b\nend\n",
        "x = ((1)\nend\n",
        "x = :\nend\n",
    ] {
        let diag = rejects(src);
        assert!(diag.starts_with("line 1:"), "diag lacks location: {diag}");
    }
}

#[test]
fn broken_subscripts_are_diagnosed() {
    for src in [
        "x = a(:\nend\n",
        "x = a()\nend\n",
        "x = a(,)\nend\n",
        "x = a(1:2:3:4)\nend\n",
        "x = a(1,\nend\n",
        "x = foo(1,)\nend\n",
    ] {
        rejects(src);
    }
}

#[test]
fn broken_control_flow_is_diagnosed() {
    for src in [
        "do\nend do\nend\n",
        "do i\nend\n",
        "do i = 1\nend do\nend\n",
        "do i = ,\nend do\nend\n",
        "do i = 1, n\nend\n", // unterminated do
        "forall (\nend\n",
        "forall (i=1:\nend\n",
        "end do\nend\n",
        "end forall\nend\n",
        "do i = 1, n\n", // missing program end entirely
    ] {
        rejects(src);
    }
}

#[test]
fn broken_declarations_and_directives_are_diagnosed() {
    for src in [
        "real a(\nend\n",
        "real\nend\n",
        "real a(10), \nend\n",
        "parameter (n)\nend\n",
        "parameter (n=)\nend\n",
        "parameter ()\nend\n",
        "!hpf$ processors\nend\n",
        "!hpf$ processors p(\nend\n",
        "!hpf$ template t(\nend\n",
        "!hpf$ distribute\nend\n",
        "!hpf$ align\nend\n",
        "!hpf$ align (:, *) with\nend\n",
        "!hpf$ distribute a(cyclic()) on p\nend\n",
        "!hpf$ distribute a(cyclic(-2)) on p\nend\n",
    ] {
        rejects(src);
    }
}

#[test]
fn semantic_violations_are_diagnosed_not_panicked() {
    // Each case parses, then must fail analysis with a message that names
    // the offending entity.
    let cases: &[(&str, &str)] = &[
        // No processors directive at all.
        ("x = 1\nend\n", "processors"),
        // Unknown distribute target.
        (
            "!hpf$ processors p(2)\n!hpf$ distribute q(block) on p\nend\n",
            "`q`",
        ),
        // Unknown processor grid.
        (
            "real a(8)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on q\nend\n",
            "`q`",
        ),
        // Unknown align template.
        (
            "real a(8)\n!hpf$ processors p(2)\n!hpf$ align (:) with t :: a\nend\n",
            "`t`",
        ),
        // Rank mismatch: 1-D pattern on 2-D array.
        (
            "real b(8, 8)\n!hpf$ processors p(2)\n!hpf$ template t(8)\n!hpf$ distribute t(block) on p\n!hpf$ align (:) with t :: b\nend\n",
            "rank mismatch",
        ),
        // Distribution rank mismatch.
        (
            "real a(8)\n!hpf$ processors p(2)\n!hpf$ distribute a(block, block) on p\nend\n",
            "`a`",
        ),
        // Non-positive extents.
        (
            "real a(0)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\nend\n",
            "non-positive extent",
        ),
        (
            "parameter (n = 2 - 5)\nreal a(n)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\nend\n",
            "non-positive extent",
        ),
        // Degenerate processor grid.
        (
            "real a(8)\n!hpf$ processors p(0)\n!hpf$ distribute a(block) on p\nend\n",
            "`p`",
        ),
        // Zero cyclic block size (previously panicked downstream).
        (
            "real a(8)\n!hpf$ processors p(4)\n!hpf$ distribute a(cyclic(0)) on p\nend\n",
            "cyclic block size",
        ),
        // Constant-expression failures.
        (
            "parameter (n = 1/0)\nreal a(n)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\nend\n",
            "division by zero",
        ),
        (
            "real a(m)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\nend\n",
            "`m`",
        ),
    ];
    for (src, needle) in cases {
        let diag = rejects(src);
        assert!(
            diag.contains(needle),
            "diagnostic for\n{src}\nshould mention {needle:?}, got: {diag}"
        );
    }
}

#[test]
fn incompatible_indirect_subscripts_are_diagnosed() {
    // Indirection arrays (`a(idx(i))`) feed the runtime inspector, which
    // bins gather targets by block owner — anything else must come back as
    // a located diagnostic, not a wrong answer at runtime.
    let cases: &[(&str, &str)] = &[
        // Indirection array distributed cyclic.
        (
            "real a(8), idx(8)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\n!hpf$ distribute idx(cyclic) on p\na(1) = a(idx(1))\nend\n",
            "block-distributed",
        ),
        // Indirection array never declared.
        (
            "real a(8)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\na(1) = a(q(1))\nend\n",
            "not a declared array",
        ),
        // Two-dimensional indirection array.
        (
            "real a(8), idx(8, 8)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\n!hpf$ distribute idx(*, block) on p\na(1) = a(idx(1, 1))\nend\n",
            "one-dimensional",
        ),
        // Indirect subscript nested in a do-loop body.
        (
            "real a(8), idx(8)\n!hpf$ processors p(2)\n!hpf$ distribute a(block) on p\n!hpf$ distribute idx(cyclic(2)) on p\ndo i = 1, 8\na(i) = a(idx(i))\nend do\nend\n",
            "distribution-compatible",
        ),
    ];
    for (src, needle) in cases {
        let diag = rejects(src);
        assert!(
            diag.contains(needle),
            "diagnostic for\n{src}\nshould mention {needle:?}, got: {diag}"
        );
        assert!(
            !diag.starts_with("line 0:"),
            "indirect-subscript diagnostic lost its source line: {diag}"
        );
    }
}

#[test]
fn garbage_bytes_do_not_panic() {
    for src in [
        "\u{0}\u{1}\u{2}",
        "x = 99999999999999999999999\nend\n",
        "x = 1.2.3\nend\n",
        "@#$%\nend\n",
        "x = 1e\nend\n",
    ] {
        // Either rejected or (for odd-but-lexable inputs) accepted — the
        // only failure mode we outlaw here is a panic.
        let _ = std::panic::catch_unwind(|| front(src))
            .unwrap_or_else(|_| panic!("frontend panicked on {src:?}"));
    }
}

#[test]
fn well_formed_program_still_accepted() {
    // Guard against over-tightening: the shipped example must stay green.
    front(hpf::GAXPY_SOURCE).expect("gaxpy example must pass the frontend");
}
