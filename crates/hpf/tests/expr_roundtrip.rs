//! Property test: pretty-printing any generated expression and re-parsing
//! it yields the same AST (parenthesization is exact, never ambiguous).

use proptest::prelude::*;

use hpf::{parse_program, pretty, BinOp, Expr, Stmt, Subscript};

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::Int),
        (0u32..500).prop_map(|v| Expr::Real(v as f64 / 4.0)),
        "[a-e]".prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                ]
            )
                .prop_map(|(l, r, op)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (inner.clone(), inner.clone(), "[f-h]").prop_map(|(i, j, name)| Expr::ArrayRef {
                name,
                subs: vec![Subscript::Index(i), Subscript::Index(j)],
            }),
            (inner, "[w-z]").prop_map(|(a, _)| Expr::Call {
                name: "sum".to_string(),
                args: vec![a, Expr::Int(2)],
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_then_parse_is_identity(e in arb_expr()) {
        let printed = format!("x = {}\nend\n", pretty::expr(&e));
        let prog = parse_program(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        let Stmt::Assign { rhs, .. } = &prog.stmts[0] else {
            panic!("expected assignment");
        };
        prop_assert_eq!(rhs, &e, "printed as: {}", printed);
    }
}
