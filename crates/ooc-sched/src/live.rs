//! Live workloads: profile many compiled programs *concurrently* on one
//! shared worker pool, then schedule them against the disk farm.
//!
//! [`crate::capture::profile`] runs one program at a time, each on its own
//! simulated machine with one OS thread per rank. That is fine for a
//! handful of jobs but cannot express the target workload — a hundred-plus
//! programs in flight at once would need thousands of OS threads. Here the
//! pooled engine hosts every rank of every job as a cooperative task on a
//! fixed set of workers: [`profile_all_on`] submits all captures up front
//! via [`noderun::start`] and only then waits, so the whole fleet
//! interleaves on the pool. Each job's simulated machine is still private —
//! clocks never entangle across jobs — so every profile is bit-identical
//! to the one [`crate::capture::profile`] would have captured solo.

use std::sync::Arc;

use dmsim::WorkerPool;
use noderun::{start, RunConfig, RunError, StartedRun};
use ooc_core::CompiledProgram;
use ooc_trace::TraceConfig;

use crate::capture::JobProfile;
use crate::workload::{run_workload, AdmissionError, JobSpec, WorkloadConfig, WorkloadReport};

/// Failure of a live workload: either the batch was refused at admission,
/// or a capture run failed on the pool.
#[derive(Debug)]
pub enum WorkloadError {
    /// The batch was malformed; nothing ran.
    Admission(AdmissionError),
    /// A capture run failed (I/O, recovery exhaustion, hung run…).
    Run(RunError),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Admission(e) => write!(f, "admission refused: {e}"),
            WorkloadError::Run(e) => write!(f, "capture run failed: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Admission(e) => Some(e),
            WorkloadError::Run(e) => Some(e),
        }
    }
}

impl From<AdmissionError> for WorkloadError {
    fn from(e: AdmissionError) -> Self {
        WorkloadError::Admission(e)
    }
}

impl From<RunError> for WorkloadError {
    fn from(e: RunError) -> Self {
        WorkloadError::Run(e)
    }
}

/// One program of a live workload: what to run, how, and its scheduling
/// identity on the farm.
#[derive(Clone)]
pub struct ProgramJob {
    /// Display name (job type, bench label…).
    pub name: String,
    /// The compiled program (shared — many jobs typically run the same
    /// binary with different tags or weights).
    pub compiled: Arc<CompiledProgram>,
    /// Execution configuration for the capture run. The job tag
    /// ([`RunConfig::job`]) gives the job its own fault/RNG streams; leave
    /// it 0 for bit-identity with an untagged solo run.
    pub cfg: RunConfig,
    /// Submission time on the workload clock.
    pub submit: f64,
    /// Fair-share weight.
    pub weight: f64,
}

impl ProgramJob {
    /// A job with default configuration, submitted at time zero with unit
    /// weight.
    pub fn new(name: impl Into<String>, compiled: Arc<CompiledProgram>) -> ProgramJob {
        ProgramJob {
            name: name.into(),
            compiled,
            cfg: RunConfig::default(),
            submit: 0.0,
            weight: 1.0,
        }
    }

    /// Same job with a different execution configuration.
    pub fn with_cfg(mut self, cfg: RunConfig) -> ProgramJob {
        self.cfg = cfg;
        self
    }

    /// Same job with a workload job tag (its own fault/RNG streams, see
    /// [`RunConfig::job`]).
    pub fn with_job_tag(mut self, job: u32) -> ProgramJob {
        self.cfg.job = job;
        self
    }

    /// Same job with a different submission time.
    pub fn with_submit(mut self, submit: f64) -> ProgramJob {
        self.submit = submit;
        self
    }

    /// Same job with a different fair-share weight.
    pub fn with_weight(mut self, weight: f64) -> ProgramJob {
        self.weight = weight;
        self
    }
}

/// Force detailed tracing on a capture configuration, exactly as
/// [`crate::capture::profile`] does.
fn capture_cfg(cfg: &RunConfig) -> RunConfig {
    let mut cfg = cfg.clone();
    match cfg.machine.as_mut() {
        // An explicit machine carries its own trace configuration.
        Some(m) => m.trace = TraceConfig::detailed(),
        None => cfg.trace = Some(TraceConfig::detailed()),
    }
    cfg
}

/// Capture every job's solo profile, with all captures in flight at once on
/// `pool`.
///
/// All jobs are submitted before any is waited on, so the pool interleaves
/// their ranks freely; profiles come back in job order and are bit-identical
/// to sequential [`crate::capture::profile`] calls with the same configs.
pub fn profile_all_on(jobs: &[ProgramJob], pool: &WorkerPool) -> Result<Vec<JobProfile>, RunError> {
    let started: Vec<StartedRun> = jobs
        .iter()
        .map(|job| {
            start(
                Arc::clone(&job.compiled),
                Arc::new(capture_cfg(&job.cfg)),
                pool,
            )
        })
        .collect::<Result<_, _>>()?;
    started
        .into_iter()
        .map(|s| {
            let mut out = s.wait()?;
            let trace = out
                .report
                .take_trace()
                .expect("tracing was enabled for profiling");
            let rank_finish = out
                .report
                .per_proc()
                .iter()
                .map(|p| p.finish_time)
                .collect();
            Ok(JobProfile::from_trace(&trace, rank_finish).with_counters(&out.report.totals()))
        })
        .collect()
}

/// Profile `jobs` concurrently on `pool` and run them as a workload against
/// the shared disk farm.
///
/// The live, end-to-end counterpart of [`run_workload`]: instead of taking
/// pre-captured [`JobSpec`]s it takes the programs themselves, captures the
/// whole fleet concurrently on the fixed worker pool, and feeds the
/// resulting profiles to the deterministic admission/replay machinery.
pub fn run_workload_live(
    jobs: &[ProgramJob],
    cfg: &WorkloadConfig,
    pool: &WorkerPool,
) -> Result<WorkloadReport, WorkloadError> {
    let specs = capture_specs(jobs, pool)?;
    Ok(run_workload(&specs, cfg)?)
}

/// [`run_workload_live`] with the workload observatory attached: the replay
/// publishes admissions, dispatches, and completions to `observer` and
/// samples farm state every `sample_every` simulated seconds.
///
/// The report is bit-identical to [`run_workload_live`]'s — observation
/// never perturbs the replay.
pub fn run_workload_live_observed(
    jobs: &[ProgramJob],
    cfg: &WorkloadConfig,
    pool: &WorkerPool,
    sample_every: f64,
    observer: &mut dyn crate::obs::WorkloadObserver,
) -> Result<WorkloadReport, WorkloadError> {
    let specs = capture_specs(jobs, pool)?;
    Ok(crate::workload::run_workload_observed(
        &specs,
        cfg,
        sample_every,
        observer,
    )?)
}

/// Capture the fleet concurrently and assemble the [`JobSpec`]s the
/// admission machinery consumes.
fn capture_specs(jobs: &[ProgramJob], pool: &WorkerPool) -> Result<Vec<JobSpec>, WorkloadError> {
    // Refuse duplicate job tags up front: two jobs sharing a nonzero tag
    // would draw from the same fault/RNG streams and their identities
    // would collide in the report.
    let mut tags: Vec<u32> = jobs.iter().map(|j| j.cfg.job).filter(|&t| t != 0).collect();
    tags.sort_unstable();
    if let Some(w) = tags.windows(2).find(|w| w[0] == w[1]) {
        return Err(AdmissionError::DuplicateJobId {
            job: format!("tag {}", w[0]),
        }
        .into());
    }
    let profiles = profile_all_on(jobs, pool)?;
    Ok(jobs
        .iter()
        .zip(profiles)
        .map(|(j, p)| {
            JobSpec::new(j.name.clone(), p)
                .with_submit(j.submit)
                .with_weight(j.weight)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::profile;
    use crate::policy::Policy;
    use ooc_core::{compile_source, CompilerOptions};

    fn small_program() -> Arc<CompiledProgram> {
        Arc::new(compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap())
    }

    #[test]
    fn concurrent_capture_matches_solo_capture_bit_for_bit() {
        let compiled = small_program();
        let pool = WorkerPool::new(2);
        let jobs: Vec<ProgramJob> = (0..4)
            .map(|i| {
                ProgramJob::new(format!("j{i}"), Arc::clone(&compiled)).with_job_tag(i as u32 + 1)
            })
            .collect();
        let live = profile_all_on(&jobs, &pool).unwrap();
        for (job, got) in jobs.iter().zip(&live) {
            let solo = profile(&job.compiled, &job.cfg).unwrap();
            assert_eq!(got, &solo, "job {} profile diverged", job.name);
        }
    }

    #[test]
    fn run_workload_live_matches_precaptured_run_workload() {
        let compiled = small_program();
        let pool = WorkerPool::new(2);
        let jobs: Vec<ProgramJob> = (0..3)
            .map(|i| {
                ProgramJob::new(format!("j{i}"), Arc::clone(&compiled)).with_weight(1.0 + i as f64)
            })
            .collect();
        let wcfg = WorkloadConfig {
            policy: Policy::FairShare,
            max_concurrent: 2,
            ..WorkloadConfig::default()
        };
        let live = run_workload_live(&jobs, &wcfg, &pool).unwrap();
        let specs: Vec<JobSpec> = jobs
            .iter()
            .map(|j| {
                JobSpec::new(j.name.clone(), profile(&j.compiled, &j.cfg).unwrap())
                    .with_weight(j.weight)
            })
            .collect();
        let precaptured = run_workload(&specs, &wcfg).unwrap();
        assert_eq!(live, precaptured);
    }
}
