//! # ooc-sched — disk-farm I/O scheduling and multi-job workloads
//!
//! The paper prices disk contention *statically*: the cost model's
//! `shared_disks` / aggregate-bandwidth parameters divide the farm's
//! bandwidth evenly among the processors before a single request is
//! issued. That is exact for one well-balanced program, but it cannot say
//! anything about a *workload* — several compiled programs sharing the
//! same physical disks, each seeing the others only through queueing
//! delay. This crate adds that missing layer:
//!
//! * [`capture`] — profile a compiled program solo (one deterministic
//!   traced run) and extract its per-rank disk request streams.
//! * [`farm`] — a modeled disk-farm server: per-disk request queues on the
//!   simulated clock with pluggable [`Policy`]s (FIFO, offset-coalescing
//!   elevator, deadline, weighted fair share) and the legacy static
//!   divide as the byte-identical fallback. Replays are closed-loop and
//!   bit-deterministic; the solo FIFO replay reproduces the original
//!   simulated times exactly.
//! * [`workload`] — a multi-job runtime that admits, batches and runs
//!   several programs concurrently against the shared farm, with
//!   deterministic admission control, per-job isolation (fault/RNG
//!   streams derive from the `(job, rank)` pair via
//!   [`noderun::RunConfig::job`]) and per-job queue-depth / wait-time
//!   metrics, exportable as a Perfetto timeline.
//! * [`obs`] — the workload observatory: a typed, time-ordered event bus
//!   ([`WorkloadObserver`]), a deterministic fixed-cadence sampler, a
//!   bounded crash flight recorder, and SLO scorecards — all guaranteed
//!   never to perturb the replay they watch.
//! * [`serve`] — `oocd`, the persistent multi-tenant I/O daemon: it owns
//!   the farm, accepts length-prefixed JSON submissions over Unix-domain
//!   or TCP sockets from many tenants, seals the virtual timeline on
//!   `drain`, maps the session onto the guarded observed runtime, and
//!   streams the observatory to subscribers — deterministically, so two
//!   daemons fed the same logical submissions emit byte-identical
//!   artifacts.
//!
//! The compiler side of the story is
//! [`ooc_core::CompilerOptions::background`] /
//! [`dmsim::CostModel::contended`]: planning a job against the bandwidth
//! share the farm will actually give it.
//!
//! ```
//! use ooc_sched::{profile, run_workload, JobSpec, Policy, WorkloadConfig};
//!
//! let compiled = ooc_core::compile_source(
//!     hpf::GAXPY_SOURCE,
//!     &ooc_core::CompilerOptions::default(),
//! )
//! .unwrap();
//! let p = profile(&compiled, &noderun::RunConfig::default()).unwrap();
//! let specs = vec![
//!     JobSpec::new("a", p.clone()),
//!     JobSpec::new("b", p).with_weight(2.0),
//! ];
//! let report = run_workload(
//!     &specs,
//!     &WorkloadConfig {
//!         policy: Policy::FairShare,
//!         max_concurrent: 2,
//!         ..WorkloadConfig::default()
//!     },
//! )
//! .unwrap();
//! assert!(report.jobs[0].completion >= report.jobs[0].solo_makespan);
//! ```

pub mod capture;
pub mod domain;
pub mod farm;
pub mod live;
pub mod obs;
pub mod policy;
pub mod serve;
pub mod workload;

pub use capture::{profile, IoReq, JobProfile};
pub use domain::{
    run_workload_guarded, run_workload_guarded_observed, DomainConfig, GuardedJobReport,
    GuardedReport, JobOutcome,
};
pub use farm::{simulate, FarmConfig, FarmJob, FarmReport, FarmSim, JobQueueStats, Served};
pub use live::{
    profile_all_on, run_workload_live, run_workload_live_observed, ProgramJob, WorkloadError,
};
pub use obs::{
    EventLog, FlightRecorder, NullObserver, ObsEvent, ObsKind, Sample, Sampler, SloScorecard,
    WorkloadObserver,
};
pub use policy::Policy;
pub use serve::{
    read_frame, serve, submit_json, write_frame, Client, Conn, DaemonHandle, Listener, ProtoError,
    ServeConfig, DEFAULT_MAX_FRAME,
};
pub use workload::{
    run_workload, run_workload_observed, AdmissionError, JobReport, JobSpec, WorkloadConfig,
    WorkloadReport,
};
