//! The workload observatory: a typed, ordered event bus, a deterministic
//! virtual-time sampler, a bounded crash flight recorder, and SLO
//! scorecards.
//!
//! The farm and the guarded executive publish every control-plane decision
//! — admissions, dispatches, preemptions and resumes, watchdog and
//! deadline kills, retries with backoff, checkpoint watermarks, disk
//! deaths and migrations, completions — as [`ObsEvent`]s stamped with
//! simulated time, consumed through the [`WorkloadObserver`] trait passed
//! into [`crate::run_workload_observed`], [`crate::run_workload_live_observed`]
//! and [`crate::run_workload_guarded_observed`].
//!
//! Ordering contract: the stream is globally non-decreasing in `t`.
//! Control events are stamped at the sweep that *detected* them (actual
//! times, when different, ride in the payload — e.g.
//! [`ObsKind::Completed::completion`]); farm dispatches are stamped at
//! service start; each flush batch is stable-sorted by time before
//! delivery. Because every event derives purely from the captured solo
//! profiles and the configuration, the stream is byte-identical across
//! runs, seeds of equal value, and execution engines — the parity tests
//! compare rendered [`EventLog`]s bitwise.
//!
//! The [`Sampler`] walks a fixed virtual-time cadence and records per-disk
//! queue depth and utilization, the in-flight job count, chaos-counter
//! deltas (via [`StatsSnapshot::delta`]), and per-job progress against the
//! solo profile. Sampling never perturbs the simulation: the chunked
//! `run_until` it inserts is bitwise outcome-invariant (proven by the
//! farm's chunked-replay test), and the observer-transparency tests assert
//! the full report is unchanged by observation.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use dmsim::StatsSnapshot;

use crate::domain::GuardedReport;
use crate::farm::FarmSim;

/// One observatory event: a simulated-time stamp, the owning job tag
/// (0 for workload-level events such as disk deaths), and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Simulated time the event was published (sweep/detection time for
    /// control events, service start for dispatches).
    pub t: f64,
    /// Owning job tag (1-based spec position; 0 = workload-level).
    pub job: u32,
    /// Typed payload.
    pub kind: ObsKind,
}

/// Event payloads published on the observatory bus.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsKind {
    /// A job (re)entered the farm.
    Admitted {
        /// Admission count for this job so far (1 = first run).
        attempt: u32,
        /// True when resuming from a checkpoint watermark.
        resumed: bool,
    },
    /// A disk began serving one of the job's requests.
    Dispatched {
        /// Serving disk.
        disk: usize,
        /// Stream rank within the job.
        rank: usize,
        /// Request position in its stream.
        seq: usize,
        /// Queueing wait the request suffered, seconds.
        wait: f64,
        /// Service time charged, seconds.
        service: f64,
        /// Payload bytes.
        bytes: u64,
        /// True for writes.
        write: bool,
    },
    /// EDF evicted the job at a checkpoint boundary.
    Preempted,
    /// The watchdog declared the job hung and killed the attempt.
    WatchdogKill,
    /// The job blew its deadline and the attempt was killed.
    DeadlineKill,
    /// A killed job was rescheduled with exponential backoff.
    RetryScheduled {
        /// Upcoming admission count.
        attempt: u32,
        /// Backoff charged, virtual seconds.
        backoff: f64,
        /// Workload time the retry re-enters admission.
        resume_at: f64,
    },
    /// The job's progress was rolled back to a checkpoint watermark.
    Checkpoint {
        /// Total requests (summed over ranks) the resume will skip.
        watermark: u64,
    },
    /// Re-run budget exhausted; the executive stopped resubmitting.
    Quarantined {
        /// Total admissions before quarantine.
        attempts: u32,
    },
    /// Killed terminally (no re-run budget configured).
    Killed,
    /// The job completed.
    Completed {
        /// Completion on the workload clock (may precede the stamping
        /// sweep; completion is detected on the epoch grid).
        completion: f64,
        /// True when the job was killed or preempted along the way.
        recovered: bool,
    },
    /// A disk died permanently; its queued streams migrated.
    DiskDeath {
        /// The dead disk.
        disk: usize,
        /// Streams migrated to the survivors.
        migrated: usize,
        /// Configured death time (the stamp is the detecting sweep).
        at: f64,
    },
    /// The chaos harness pinned one rank's remaining requests.
    HangInjected {
        /// The hung stream's rank.
        rank: usize,
    },
}

impl ObsKind {
    /// Stable lowercase tag for rendering and filtering.
    pub fn tag(&self) -> &'static str {
        match self {
            ObsKind::Admitted { .. } => "admitted",
            ObsKind::Dispatched { .. } => "dispatched",
            ObsKind::Preempted => "preempted",
            ObsKind::WatchdogKill => "watchdog_kill",
            ObsKind::DeadlineKill => "deadline_kill",
            ObsKind::RetryScheduled { .. } => "retry_scheduled",
            ObsKind::Checkpoint { .. } => "checkpoint",
            ObsKind::Quarantined { .. } => "quarantined",
            ObsKind::Killed => "killed",
            ObsKind::Completed { .. } => "completed",
            ObsKind::DiskDeath { .. } => "disk_death",
            ObsKind::HangInjected { .. } => "hang_injected",
        }
    }
}

/// Per-disk state captured by one [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSample {
    /// Streams with an armed (arrived, unserved) head request at the
    /// sample time.
    pub depth: usize,
    /// Busy-time delta over the cadence interval divided by the cadence.
    /// May transiently exceed 1.0: service is not preemptible, so a
    /// request entering service just before a sample boundary charges its
    /// full service time to that interval.
    pub utilization: f64,
}

/// One job's progress at a sample point.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProgress {
    /// Job tag.
    pub job: u32,
    /// Requests served so far (checkpoint watermark included on resume).
    pub done: u64,
    /// Total requests in the solo profile.
    pub total: u64,
}

/// One deterministic time-series sample on the virtual-time cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample time (a multiple of the cadence).
    pub t: f64,
    /// Jobs admitted and not yet drained at `t`.
    pub in_flight: usize,
    /// Per-disk queue depth and utilization, disk order.
    pub disks: Vec<DiskSample>,
    /// Chaos-counter *deltas* since the previous sample
    /// (`faults_injected`, `io_retries`, `msg_retries` are the meaningful
    /// fields; computed with [`StatsSnapshot::delta`]).
    pub counters: StatsSnapshot,
    /// Per-job progress for jobs on the farm at `t`, admission order.
    pub progress: Vec<JobProgress>,
}

/// Consumer of the observatory stream. Implementations must be cheap and
/// side-effect-free with respect to the simulation: the runtime calls
/// [`WorkloadObserver::event`] for every bus event in non-decreasing time
/// order and [`WorkloadObserver::sample`] at every cadence point.
pub trait WorkloadObserver {
    /// One bus event.
    fn event(&mut self, e: &ObsEvent);
    /// One time-series sample (default: ignored).
    fn sample(&mut self, _s: &Sample) {}
}

/// Observer that discards everything (useful as a baseline in tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl WorkloadObserver for NullObserver {
    fn event(&mut self, _e: &ObsEvent) {}
}

/// Observer that retains the full stream and renders it deterministically
/// — the byte-comparison vehicle for parity tests and the CI smoke job.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct EventLog {
    /// Every event, in delivery order (non-decreasing `t`).
    pub events: Vec<ObsEvent>,
    /// Every sample, in cadence order.
    pub samples: Vec<Sample>,
}

impl WorkloadObserver for EventLog {
    fn event(&mut self, e: &ObsEvent) {
        self.events.push(e.clone());
    }

    fn sample(&mut self, s: &Sample) {
        self.samples.push(s.clone());
    }
}

/// Render one event as a single deterministic line (no trailing newline).
pub fn render_event(e: &ObsEvent) -> String {
    let mut line = format!("{:.9} j{} {}", e.t, e.job, e.kind.tag());
    match &e.kind {
        ObsKind::Admitted { attempt, resumed } => {
            let _ = write!(line, " attempt={attempt} resumed={resumed}");
        }
        ObsKind::Dispatched {
            disk,
            rank,
            seq,
            wait,
            service,
            bytes,
            write,
        } => {
            let _ = write!(
                line,
                " disk={disk} rank={rank} seq={seq} wait={wait:.9} \
                 service={service:.9} bytes={bytes} write={write}"
            );
        }
        ObsKind::RetryScheduled {
            attempt,
            backoff,
            resume_at,
        } => {
            let _ = write!(
                line,
                " attempt={attempt} backoff={backoff:.9} resume_at={resume_at:.9}"
            );
        }
        ObsKind::Checkpoint { watermark } => {
            let _ = write!(line, " watermark={watermark}");
        }
        ObsKind::Quarantined { attempts } => {
            let _ = write!(line, " attempts={attempts}");
        }
        ObsKind::Completed {
            completion,
            recovered,
        } => {
            let _ = write!(line, " completion={completion:.9} recovered={recovered}");
        }
        ObsKind::DiskDeath { disk, migrated, at } => {
            let _ = write!(line, " disk={disk} migrated={migrated} at={at:.9}");
        }
        ObsKind::HangInjected { rank } => {
            let _ = write!(line, " rank={rank}");
        }
        ObsKind::Preempted | ObsKind::WatchdogKill | ObsKind::DeadlineKill | ObsKind::Killed => {}
    }
    line
}

pub(crate) fn render_sample(s: &Sample) -> String {
    let mut line = format!("{:.9} sample in_flight={}", s.t, s.in_flight);
    line.push_str(" disks=[");
    for (i, d) in s.disks.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        let _ = write!(line, "d{i}:{}:{:.9}", d.depth, d.utilization);
    }
    let _ = write!(
        line,
        "] faults=+{} io_retries=+{} msg_retries=+{} progress=[",
        s.counters.faults_injected, s.counters.io_retries, s.counters.msg_retries
    );
    for (i, p) in s.progress.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        let _ = write!(line, "j{}:{}/{}", p.job, p.done, p.total);
    }
    line.push(']');
    line
}

impl EventLog {
    /// Render the whole stream as deterministic text, one line per event
    /// or sample, merged in time order (events first on ties). Two
    /// identical runs — across seeds of equal value and across execution
    /// engines — produce byte-identical renders.
    pub fn render(&self) -> String {
        enum Line<'a> {
            Ev(&'a ObsEvent),
            Sm(&'a Sample),
        }
        let mut merged: Vec<(f64, usize, Line)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            merged.push((e.t, i, Line::Ev(e)));
        }
        for (i, s) in self.samples.iter().enumerate() {
            merged.push((s.t, self.events.len() + i, Line::Sm(s)));
        }
        merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut out = String::new();
        for (_, _, l) in merged {
            match l {
                Line::Ev(e) => out.push_str(&render_event(e)),
                Line::Sm(s) => out.push_str(&render_sample(s)),
            }
            out.push('\n');
        }
        out
    }
}

/// Deterministic time-series sampler on a fixed virtual-time cadence.
///
/// Sample times are the exact grid `every * k` (computed by
/// multiplication, not accumulation, so the grid itself is bitwise
/// reproducible). The runtime chunks its farm advances at
/// [`Sampler::due`] points; chunked `run_until` is bitwise
/// outcome-invariant, so sampling never changes what it measures.
#[derive(Debug, Clone)]
pub struct Sampler {
    every: f64,
    k: u64,
    prev_busy: Vec<f64>,
    prev_counters: StatsSnapshot,
}

impl Sampler {
    /// A sampler with cadence `every` (virtual seconds, positive finite)
    /// over a farm of `ndisks` disks.
    pub fn new(every: f64, ndisks: usize) -> Sampler {
        assert!(
            every > 0.0 && every.is_finite(),
            "sample cadence must be positive and finite"
        );
        Sampler {
            every,
            k: 0,
            prev_busy: vec![0.0; ndisks],
            prev_counters: StatsSnapshot::default(),
        }
    }

    /// The next grid point, if it is at or before `horizon`.
    pub fn due(&self, horizon: f64) -> Option<f64> {
        let next = self.every * (self.k + 1) as f64;
        (next <= horizon).then_some(next)
    }

    /// Take the sample at the pending grid point. The caller must have
    /// advanced `sim` to exactly that time; `cumulative` carries the
    /// chaos counters attributable to the workload so far (the sample
    /// stores the delta against the previous sample).
    pub fn take(&mut self, sim: &FarmSim, cumulative: StatsSnapshot) -> Sample {
        self.k += 1;
        let t = self.every * self.k as f64;
        let mut disks = Vec::with_capacity(self.prev_busy.len());
        for d in 0..self.prev_busy.len() {
            let busy = sim.busy(d);
            let utilization = (busy - self.prev_busy[d]) / self.every;
            self.prev_busy[d] = busy;
            disks.push(DiskSample {
                depth: sim.queue_depth_at(d, t),
                utilization,
            });
        }
        let counters = cumulative.delta(&self.prev_counters);
        self.prev_counters = cumulative;
        Sample {
            t,
            in_flight: sim.in_flight_at(t),
            disks,
            counters,
            progress: sim
                .progress_report(t)
                .iter()
                .map(|&(job, done, total)| JobProgress { job, done, total })
                .collect(),
        }
    }
}

/// Bounded per-job ring buffer of recent events: the crash flight
/// recorder. The guarded runtime feeds it every bus event; when a job
/// ends [`crate::JobOutcome::Killed`] or [`crate::JobOutcome::Quarantined`],
/// the ring is dumped into the report as the job's postmortem.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cap: usize,
    rings: BTreeMap<u32, VecDeque<ObsEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` events per job (0 disables it).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            rings: BTreeMap::new(),
        }
    }

    /// Record one event under its owning job tag.
    pub fn push(&mut self, e: &ObsEvent) {
        if self.cap == 0 {
            return;
        }
        let ring = self.rings.entry(e.job).or_default();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(e.clone());
    }

    /// The retained events for `job`, oldest first.
    pub fn dump(&self, job: u32) -> Vec<ObsEvent> {
        self.rings
            .get(&job)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }
}

/// Service-level scorecard for one guarded workload run: turnaround
/// quantiles, slowdown vs the solo baseline, and the deadline hit rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SloScorecard {
    /// Policy name ([`crate::Policy::name`]).
    pub policy: &'static str,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that completed (Done or Recovered).
    pub completed: usize,
    /// Completions that needed a kill, retry or preemption.
    pub recovered: usize,
    /// Jobs killed terminally.
    pub killed: usize,
    /// Jobs quarantined.
    pub quarantined: usize,
    /// Completed jobs that made their enforced deadline.
    pub deadline_hits: usize,
    /// Median turnaround (submit to completion) among completed jobs;
    /// `None` when nothing completed — a zero-sample quantile is
    /// "unknown", not 0 (which would read as a perfect SLO).
    pub p50_turnaround: Option<f64>,
    /// 95th-percentile turnaround (nearest rank); `None` on no samples.
    pub p95_turnaround: Option<f64>,
    /// 99th-percentile turnaround (nearest rank); `None` on no samples.
    pub p99_turnaround: Option<f64>,
    /// Mean of turnaround / solo makespan over completed jobs.
    pub mean_slowdown: f64,
    /// Latest completion on the workload clock.
    pub makespan: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice. `None` on an
/// empty slice: there is no value every sample is below, and reporting
/// 0.0 would make a run that completed nothing look like a perfect SLO.
fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

impl SloScorecard {
    /// Score a guarded run.
    pub fn from_guarded(rep: &GuardedReport) -> SloScorecard {
        use crate::domain::JobOutcome;
        let mut turnarounds: Vec<f64> = Vec::new();
        let mut slowdowns: Vec<f64> = Vec::new();
        let mut deadline_hits = 0usize;
        let (mut recovered, mut killed, mut quarantined) = (0usize, 0usize, 0usize);
        for j in &rep.jobs {
            match &j.outcome {
                JobOutcome::Done { completion } | JobOutcome::Recovered { completion, .. } => {
                    if matches!(j.outcome, JobOutcome::Recovered { .. }) {
                        recovered += 1;
                    }
                    let ta = completion - j.submit;
                    turnarounds.push(ta);
                    if j.solo_makespan > 0.0 {
                        slowdowns.push(ta / j.solo_makespan);
                    }
                    if *completion <= j.deadline {
                        deadline_hits += 1;
                    }
                }
                JobOutcome::Killed { .. } => killed += 1,
                JobOutcome::Quarantined { .. } => quarantined += 1,
            }
        }
        turnarounds.sort_by(|a, b| a.total_cmp(b));
        let mean_slowdown = if slowdowns.is_empty() {
            0.0
        } else {
            slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
        };
        SloScorecard {
            policy: rep.policy.name(),
            jobs: rep.jobs.len(),
            completed: turnarounds.len(),
            recovered,
            killed,
            quarantined,
            deadline_hits,
            p50_turnaround: percentile_sorted(&turnarounds, 0.50),
            p95_turnaround: percentile_sorted(&turnarounds, 0.95),
            p99_turnaround: percentile_sorted(&turnarounds, 0.99),
            mean_slowdown,
            makespan: rep.makespan(),
        }
    }

    /// Deadline hit rate over all submitted jobs (1.0 on an empty batch).
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            1.0
        } else {
            self.deadline_hits as f64 / self.jobs as f64
        }
    }

    /// Render scorecards as Prometheus metric families (one label set per
    /// policy), ready for [`ooc_trace::prom::render`].
    pub fn prom(cards: &[SloScorecard]) -> Vec<ooc_trace::prom::Metric> {
        use ooc_trace::prom::Metric;
        let mut turnaround = Metric::gauge(
            "ooc_slo_turnaround_seconds",
            "Turnaround quantiles among completed jobs",
        );
        let mut jobs = Metric::gauge("ooc_slo_jobs", "Job count by terminal outcome");
        let mut hit_rate = Metric::gauge(
            "ooc_slo_deadline_hit_ratio",
            "Completed-within-deadline fraction of submitted jobs",
        );
        let mut slowdown = Metric::gauge(
            "ooc_slo_mean_slowdown",
            "Mean turnaround over solo makespan among completed jobs",
        );
        let mut makespan = Metric::gauge(
            "ooc_slo_makespan_seconds",
            "Latest completion on the workload clock",
        );
        for c in cards {
            // Zero-sample quantiles are omitted rather than exported as a
            // misleading 0.0; scrapers see an absent series, not a perfect
            // turnaround.
            for (q, v) in [
                ("0.5", c.p50_turnaround),
                ("0.95", c.p95_turnaround),
                ("0.99", c.p99_turnaround),
            ] {
                if let Some(v) = v {
                    turnaround = turnaround.sample(&[("policy", c.policy), ("quantile", q)], v);
                }
            }
            for (outcome, n) in [
                ("completed", c.completed),
                ("recovered", c.recovered),
                ("killed", c.killed),
                ("quarantined", c.quarantined),
            ] {
                jobs = jobs.sample(&[("policy", c.policy), ("outcome", outcome)], n as f64);
            }
            hit_rate = hit_rate.sample(&[("policy", c.policy)], c.deadline_hit_rate());
            slowdown = slowdown.sample(&[("policy", c.policy)], c.mean_slowdown);
            makespan = makespan.sample(&[("policy", c.policy)], c.makespan);
        }
        vec![turnaround, jobs, hit_rate, slowdown, makespan]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{IoReq, JobProfile};
    use crate::domain::{DomainConfig, GuardedJobReport, JobOutcome};
    use crate::farm::{FarmConfig, FarmJob};
    use crate::policy::Policy;
    use crate::workload::JobSpec;

    fn profile(n: usize, service: f64, gap: f64) -> JobProfile {
        let mut reqs = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            reqs.push(IoReq {
                t0: t,
                t1: t + service,
                requests: 1,
                bytes: 64,
                offset: Some(64 * i as u64),
                write: false,
            });
            t += service + gap;
        }
        JobProfile {
            rank_finish: vec![t],
            streams: vec![reqs],
            ..JobProfile::default()
        }
    }

    fn ev(t: f64, job: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent { t, job, kind }
    }

    #[test]
    fn event_log_render_is_deterministic_and_time_merged() {
        let mut log = EventLog::default();
        log.event(&ev(
            0.0,
            1,
            ObsKind::Admitted {
                attempt: 1,
                resumed: false,
            },
        ));
        log.event(&ev(
            2.5,
            1,
            ObsKind::Completed {
                completion: 2.25,
                recovered: false,
            },
        ));
        log.sample(&Sample {
            t: 1.0,
            in_flight: 1,
            disks: vec![DiskSample {
                depth: 1,
                utilization: 0.5,
            }],
            counters: StatsSnapshot::fault_counts(2, 1, 0),
            progress: vec![JobProgress {
                job: 1,
                done: 3,
                total: 8,
            }],
        });
        let a = log.render();
        let b = log.render();
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        // Merged by time: the t=1.0 sample lands between the two events.
        assert!(lines[0].starts_with("0.000000000 j1 admitted"));
        assert!(lines[1].contains("sample in_flight=1"));
        assert!(lines[1].contains("faults=+2 io_retries=+1"));
        assert!(lines[1].contains("progress=[j1:3/8]"));
        assert!(lines[2].contains("completed completion=2.250000000"));
    }

    #[test]
    fn flight_recorder_keeps_the_last_cap_events_per_job() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.push(&ev(i as f64, 1, ObsKind::Preempted));
            fr.push(&ev(i as f64, 2, ObsKind::Killed));
        }
        let d1 = fr.dump(1);
        assert_eq!(d1.len(), 3);
        assert_eq!(d1[0].t, 2.0, "oldest retained event");
        assert_eq!(d1[2].t, 4.0);
        assert_eq!(fr.dump(2).len(), 3);
        assert!(fr.dump(9).is_empty());
        // Depth 0 disables recording entirely.
        let mut off = FlightRecorder::new(0);
        off.push(&ev(0.0, 1, ObsKind::Killed));
        assert!(off.dump(1).is_empty());
    }

    #[test]
    fn sampler_walks_the_exact_grid_and_reports_deltas() {
        let p = profile(6, 1.0, 0.0);
        let cfg = FarmConfig {
            policy: Policy::Fifo,
            ..FarmConfig::default()
        };
        let mut sim = FarmSim::new(1, cfg);
        sim.admit(&FarmJob::new(1, &p));
        sim.admit(&FarmJob::new(2, &p));
        let mut sampler = Sampler::new(2.0, 1);
        assert_eq!(sampler.due(1.0), None);
        assert_eq!(sampler.due(2.0), Some(2.0));
        sim.run_until(2.0);
        let s1 = sampler.take(&sim, StatsSnapshot::fault_counts(3, 1, 0));
        assert_eq!(s1.t, 2.0);
        assert_eq!(s1.in_flight, 2);
        // Two backlogged unit-request streams on one disk: fully busy,
        // one stream armed behind the one in service.
        assert_eq!(s1.disks[0].utilization, 1.0);
        assert!(s1.disks[0].depth >= 1);
        assert_eq!(s1.counters.faults_injected, 3);
        assert_eq!(s1.progress.len(), 2);
        assert_eq!(s1.progress[0].total, 6);
        sim.run_until(4.0);
        let s2 = sampler.take(&sim, StatsSnapshot::fault_counts(3, 1, 0));
        assert_eq!(s2.t, 4.0);
        assert_eq!(s2.counters.faults_injected, 0, "delta, not cumulative");
        assert!(s2.progress[0].done >= s1.progress[0].done);
        // Drain: the farm empties and in-flight drops to zero.
        sim.run_to_end();
        let mut sampler2 = sampler.clone();
        let s3 = sampler2.take(&sim, StatsSnapshot::fault_counts(3, 1, 0));
        assert_eq!(s3.in_flight, 0);
        assert_eq!(s3.disks[0].depth, 0);
    }

    fn card_from(outcomes: Vec<(JobOutcome, f64, f64, f64)>) -> SloScorecard {
        // (outcome, submit, deadline, solo)
        let rep = GuardedReport {
            jobs: outcomes
                .into_iter()
                .enumerate()
                .map(|(i, (outcome, submit, deadline, solo))| GuardedJobReport {
                    name: format!("j{i}"),
                    job: i as u32 + 1,
                    submit,
                    deadline,
                    solo_makespan: solo,
                    outcome,
                    attempts: 1,
                    preemptions: 0,
                    kills: 0,
                    hangs_injected: 0,
                    faults_injected: 0,
                    io_retries: 0,
                    msg_retries: 0,
                    postmortem: Vec::new(),
                })
                .collect(),
            farm: crate::farm::FarmReport {
                jobs: Vec::new(),
                served: Vec::new(),
                disk_busy: Vec::new(),
                max_queue_depth: Vec::new(),
                trace: None,
            },
            policy: Policy::Fifo,
            disk_deaths: 0,
            domain_trace: None,
        };
        SloScorecard::from_guarded(&rep)
    }

    #[test]
    fn scorecard_quantiles_hits_and_slowdown() {
        let done = |c: f64| JobOutcome::Done { completion: c };
        let card = card_from(vec![
            (done(10.0), 0.0, 100.0, 5.0), // turnaround 10, slowdown 2
            (done(20.0), 0.0, 15.0, 5.0),  // misses its deadline
            (done(30.0), 0.0, 100.0, 5.0),
            (
                JobOutcome::Recovered {
                    completion: 40.0,
                    attempts: 2,
                    preemptions: 1,
                },
                0.0,
                100.0,
                5.0,
            ),
            (
                JobOutcome::Quarantined {
                    at: 9.0,
                    attempts: 3,
                },
                0.0,
                1.0,
                5.0,
            ),
            (JobOutcome::Killed { at: 2.0 }, 0.0, 1.0, 5.0),
        ]);
        assert_eq!(card.jobs, 6);
        assert_eq!(card.completed, 4);
        assert_eq!(card.recovered, 1);
        assert_eq!(card.killed, 1);
        assert_eq!(card.quarantined, 1);
        assert_eq!(card.deadline_hits, 3);
        assert_eq!(card.deadline_hit_rate(), 0.5);
        // Nearest rank over [10, 20, 30, 40].
        assert_eq!(card.p50_turnaround, Some(20.0));
        assert_eq!(card.p95_turnaround, Some(40.0));
        assert_eq!(card.p99_turnaround, Some(40.0));
        assert_eq!(card.mean_slowdown, (2.0 + 4.0 + 6.0 + 8.0) / 4.0);
        assert_eq!(card.makespan, 40.0);
        // Degenerate: an empty batch scores cleanly.
        let empty = card_from(Vec::new());
        assert_eq!(empty.p50_turnaround, None);
        assert_eq!(empty.deadline_hit_rate(), 1.0);
        assert_eq!(empty.mean_slowdown, 0.0);
    }

    #[test]
    fn zero_completions_scorecard_has_no_quantiles_not_perfect_ones() {
        // Every job died: a 0.0 percentile here would read as "all jobs
        // turned around instantly", i.e. a perfect SLO from a run that
        // completed nothing. The quantiles must be absent instead.
        let card = card_from(vec![
            (JobOutcome::Killed { at: 2.0 }, 0.0, 1.0, 5.0),
            (
                JobOutcome::Quarantined {
                    at: 9.0,
                    attempts: 3,
                },
                0.0,
                1.0,
                5.0,
            ),
        ]);
        assert_eq!(card.jobs, 2);
        assert_eq!(card.completed, 0);
        assert_eq!(card.p50_turnaround, None);
        assert_eq!(card.p95_turnaround, None);
        assert_eq!(card.p99_turnaround, None);
        assert_eq!(card.deadline_hits, 0);
        // The prom export stays structurally valid and simply omits the
        // turnaround series instead of inventing zeros.
        let metrics = SloScorecard::prom(&[card]);
        let text = ooc_trace::prom::render(&metrics);
        ooc_trace::prom::validate(&text).unwrap();
        assert!(!text.contains("ooc_slo_turnaround_seconds{"));
        assert!(text.contains("ooc_slo_jobs{policy=\"fifo\",outcome=\"killed\"} 1.000000000"));
    }

    #[test]
    fn scorecard_prom_export_validates_and_is_deterministic() {
        let card = card_from(vec![(
            JobOutcome::Done { completion: 12.0 },
            0.0,
            100.0,
            6.0,
        )]);
        let metrics = SloScorecard::prom(&[card.clone(), card]);
        let a = ooc_trace::prom::render(&metrics);
        let b = ooc_trace::prom::render(&metrics);
        assert_eq!(a, b);
        ooc_trace::prom::validate(&a).unwrap();
        assert!(a.contains("ooc_slo_turnaround_seconds{policy=\"fifo\",quantile=\"0.5\"}"));
        assert!(a.contains("ooc_slo_jobs{policy=\"fifo\",outcome=\"completed\"} 1.000000000"));
    }

    #[test]
    fn observed_plain_workload_streams_events_and_matches_unobserved() {
        use crate::workload::{run_workload, run_workload_observed, WorkloadConfig};
        let specs: Vec<JobSpec> = (0..3)
            .map(|i| {
                JobSpec::new(format!("j{i}"), profile(5 + i, 1.0, 0.25)).with_submit(i as f64 * 0.5)
            })
            .collect();
        let cfg = WorkloadConfig {
            policy: Policy::Fifo,
            max_concurrent: 2,
            trace: true,
            ..WorkloadConfig::default()
        };
        let plain = run_workload(&specs, &cfg).unwrap();
        let mut log = EventLog::default();
        let observed = run_workload_observed(&specs, &cfg, 1.0, &mut log).unwrap();
        assert_eq!(plain.jobs, observed.jobs, "observation is transparent");
        assert_eq!(plain.farm.served, observed.farm.served);
        assert_eq!(plain.farm.trace, observed.farm.trace);
        // The stream covers every lifecycle stage of this faultless run.
        assert_eq!(
            log.events
                .iter()
                .filter(|e| matches!(e.kind, ObsKind::Admitted { .. }))
                .count(),
            3
        );
        assert_eq!(
            log.events
                .iter()
                .filter(|e| matches!(e.kind, ObsKind::Completed { .. }))
                .count(),
            3
        );
        let dispatched = log
            .events
            .iter()
            .filter(|e| matches!(e.kind, ObsKind::Dispatched { .. }))
            .count();
        assert_eq!(
            dispatched as u64,
            plain.jobs.iter().map(|j| j.requests).sum()
        );
        // Global ordering: non-decreasing time stamps.
        for w in log.events.windows(2) {
            assert!(w[0].t <= w[1].t, "{:?} then {:?}", w[0], w[1]);
        }
        assert!(!log.samples.is_empty());
        // Byte-identical across invocations.
        let mut log2 = EventLog::default();
        run_workload_observed(&specs, &cfg, 1.0, &mut log2).unwrap();
        assert_eq!(log.render(), log2.render());
    }

    #[test]
    fn observed_guarded_run_records_postmortems_and_matches_unobserved() {
        use crate::domain::{run_workload_guarded, run_workload_guarded_observed};
        let specs = vec![
            JobSpec::new("doomed", profile(8, 1.0, 0.0)),
            JobSpec::new("fine", profile(4, 1.0, 0.0)),
        ];
        let cfg = DomainConfig {
            policy: Policy::Fifo,
            hang_chance: 1.0,
            seed: 7,
            watchdog_quantum: 3.0,
            max_retries: 1,
            backoff_base: 0.5,
            epoch: 0.5,
            ..DomainConfig::default()
        };
        let plain = run_workload_guarded(&specs, &cfg).unwrap();
        let mut log = EventLog::default();
        let observed = run_workload_guarded_observed(&specs, &cfg, 1.0, &mut log).unwrap();
        assert_eq!(plain.jobs, observed.jobs, "observation is transparent");
        assert_eq!(plain.farm.served, observed.farm.served);
        // The always-hanging job quarantines and carries a postmortem
        // ending in its terminal events.
        let doomed = &observed.jobs[0];
        assert!(matches!(doomed.outcome, JobOutcome::Quarantined { .. }));
        assert!(!doomed.postmortem.is_empty());
        assert!(doomed
            .postmortem
            .iter()
            .any(|e| matches!(e.kind, ObsKind::Quarantined { .. })));
        assert!(doomed.postmortem.len() <= cfg.flight_recorder_depth);
        // The stream saw the kills and retries.
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e.kind, ObsKind::WatchdogKill)));
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e.kind, ObsKind::RetryScheduled { .. })));
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e.kind, ObsKind::HangInjected { .. })));
        for w in log.events.windows(2) {
            assert!(w[0].t <= w[1].t, "{:?} then {:?}", w[0], w[1]);
        }
    }
}
