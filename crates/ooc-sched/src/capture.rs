//! Profile capture: turn one traced solo run of a compiled program into the
//! per-rank disk request streams the farm replays.
//!
//! The farm does not re-execute programs under contention — that would
//! entangle the rank clocks across jobs and destroy determinism. Instead
//! each job is profiled once, solo, with tracing on; the disk-transfer
//! spans of that run (service start, service end, bytes, offsets) become a
//! closed-loop request stream per rank. Replaying the streams against the
//! shared farm then computes queueing delays without touching the programs
//! themselves. Because the solo run is deterministic, so is the profile,
//! and so is everything derived from it.

use noderun::{run, RunConfig, RunError};
use ooc_core::CompiledProgram;
use ooc_trace::{Category, EventKind, Trace, TraceConfig};

/// One captured disk request: a disk-transfer span of the solo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoReq {
    /// Service start on the solo run's simulated clock.
    pub t0: f64,
    /// Service end on the solo run's simulated clock.
    pub t1: f64,
    /// Coalesced I/O requests covered by the span.
    pub requests: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Starting file offset — recorded when the profile was captured with
    /// [`TraceConfig::detailed`]; the elevator policy orders seeks by it.
    pub offset: Option<u64>,
    /// Whether the span is a write or write-back (reads otherwise).
    pub write: bool,
}

impl IoReq {
    /// Service time of the request in simulated seconds.
    pub fn service(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// The farm-facing profile of one job: per-rank request streams plus the
/// solo timing envelope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobProfile {
    /// Per-rank solo finish times (`rank_finish.len()` = processor count).
    pub rank_finish: Vec<f64>,
    /// Per-rank disk request streams, ordered by service start.
    pub streams: Vec<Vec<IoReq>>,
    /// Faults the chaos harness injected into the capture run (all kinds,
    /// summed over ranks). Surfaced in workload summaries so quarantine
    /// decisions are explainable from the report alone.
    pub faults_injected: u64,
    /// Disk requests the capture run re-issued under the retry policy.
    pub io_retries: u64,
    /// Message re-transmissions after injected drops in the capture run.
    pub msg_retries: u64,
}

impl JobProfile {
    /// Number of processors (= logical disks) the job uses.
    pub fn nprocs(&self) -> usize {
        self.rank_finish.len()
    }

    /// Solo makespan: the latest rank finish time.
    pub fn makespan(&self) -> f64 {
        self.rank_finish.iter().copied().fold(0.0, f64::max)
    }

    /// Total requests across all ranks.
    pub fn total_requests(&self) -> usize {
        self.streams.iter().map(|s| s.len()).sum()
    }

    /// Structural soundness of a profile that arrived from outside the
    /// capture pipeline (a replay file, a daemon submission): every rank
    /// has a finite non-negative finish time and a matching stream, and
    /// every request span is finite, non-negative and well-ordered. A NaN
    /// smuggled into a request poisons the farm's time comparisons, so
    /// this is the admission gate that keeps a long-lived server alive.
    pub fn validate(&self) -> Result<(), String> {
        if self.streams.len() != self.rank_finish.len() {
            return Err(format!(
                "{} request streams for {} ranks",
                self.streams.len(),
                self.rank_finish.len()
            ));
        }
        for (rank, &f) in self.rank_finish.iter().enumerate() {
            if !f.is_finite() || f < 0.0 {
                return Err(format!("rank {rank}: bad finish time {f}"));
            }
        }
        for (rank, stream) in self.streams.iter().enumerate() {
            for (i, r) in stream.iter().enumerate() {
                if !r.t0.is_finite() || !r.t1.is_finite() || r.t0 < 0.0 || r.t1 < r.t0 {
                    return Err(format!(
                        "rank {rank} request {i}: bad span [{}, {}]",
                        r.t0, r.t1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Extract the disk-transfer spans of `trace` into per-rank streams.
    /// `rank_finish` is the solo run's per-rank finish times, index = rank.
    pub fn from_trace(trace: &Trace, rank_finish: Vec<f64>) -> JobProfile {
        let mut streams = vec![Vec::new(); rank_finish.len()];
        for rt in &trace.ranks {
            if rt.rank >= streams.len() {
                continue;
            }
            let stream = &mut streams[rt.rank];
            for ev in &rt.events {
                if ev.kind != EventKind::Span {
                    continue;
                }
                let write = match ev.cat {
                    Category::DiskRead => false,
                    Category::DiskWrite | Category::WriteBack => true,
                    _ => continue,
                };
                stream.push(IoReq {
                    t0: ev.t0,
                    t1: ev.t1,
                    requests: ev.args.requests,
                    bytes: ev.args.bytes,
                    offset: ev.args.offset,
                    write,
                });
            }
            // Main-track and overlap-track (prefetch) spans interleave in
            // emission order; the disk serves them in time order.
            stream.sort_by(|a, b| a.t0.total_cmp(&b.t0).then(a.t1.total_cmp(&b.t1)));
        }
        JobProfile {
            rank_finish,
            streams,
            ..JobProfile::default()
        }
    }

    /// Attach the capture run's fault/retry counters (summed over ranks).
    pub fn with_counters(mut self, totals: &dmsim::StatsSnapshot) -> JobProfile {
        self.faults_injected = totals.faults_injected;
        self.io_retries = totals.io_retries;
        self.msg_retries = totals.msg_retries;
        self
    }
}

/// Run `compiled` solo with detailed tracing and capture its farm profile.
///
/// The run is an ordinary [`noderun::run`] — same results, same simulated
/// times — except tracing is forced to [`TraceConfig::detailed`] so the
/// disk spans carry file offsets for the elevator policy. `cfg`'s other
/// fields (backend, prefetch, cache budget, faults, job tag…) apply as
/// given, so the profile reflects exactly the configuration the job would
/// run with.
pub fn profile(compiled: &CompiledProgram, cfg: &RunConfig) -> Result<JobProfile, RunError> {
    let mut cfg = cfg.clone();
    match cfg.machine.as_mut() {
        // An explicit machine carries its own trace configuration.
        Some(m) => m.trace = TraceConfig::detailed(),
        None => cfg.trace = Some(TraceConfig::detailed()),
    }
    let mut out = run(compiled, &cfg)?;
    let trace = out
        .report
        .take_trace()
        .expect("tracing was enabled for profiling");
    let rank_finish = out
        .report
        .per_proc()
        .iter()
        .map(|p| p.finish_time)
        .collect();
    Ok(JobProfile::from_trace(&trace, rank_finish).with_counters(&out.report.totals()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_trace::{Args, RankTrace, Tracer, Track};

    #[test]
    fn from_trace_keeps_only_disk_spans_in_time_order() {
        let tr = Tracer::new(0, TraceConfig::detailed());
        tr.span(
            Category::Compute,
            "flops",
            0.0,
            1.0,
            Track::Main,
            Args::default(),
        );
        tr.span(
            Category::DiskWrite,
            "write",
            3.0,
            4.0,
            Track::Main,
            Args::io(1, 64).with_offset(128),
        );
        tr.span(
            Category::DiskRead,
            "read",
            1.0,
            2.0,
            Track::Overlap,
            Args::io(2, 32),
        );
        tr.instant(Category::CacheHit, "hit", 2.5, Args::io(1, 8));
        let trace = Trace {
            ranks: vec![tr.finish()],
        };
        let p = JobProfile::from_trace(&trace, vec![5.0]);
        assert_eq!(p.nprocs(), 1);
        assert_eq!(p.makespan(), 5.0);
        let s = &p.streams[0];
        assert_eq!(s.len(), 2, "compute spans and instants are not requests");
        assert!(!s[0].write);
        assert_eq!(s[0].t0, 1.0);
        assert!(s[1].write);
        assert_eq!(s[1].offset, Some(128));
        assert_eq!(s[1].service(), 1.0);
    }

    #[test]
    fn ranks_beyond_the_report_are_ignored() {
        let tr = Tracer::new(7, TraceConfig::on());
        tr.span(
            Category::DiskRead,
            "read",
            0.0,
            1.0,
            Track::Main,
            Args::io(1, 4),
        );
        let trace = Trace {
            ranks: vec![RankTrace {
                rank: 7,
                ..tr.finish()
            }],
        };
        let p = JobProfile::from_trace(&trace, vec![1.0, 1.0]);
        assert_eq!(p.total_requests(), 0);
    }
}
