//! Multi-job workload runtime: admission control plus farm replay.
//!
//! A workload is a batch of compiled-program profiles submitted to the
//! shared disk farm. The runtime admits jobs in deterministic `(submit,
//! index)` order, holding each until a concurrency slot frees, then
//! replays all admitted jobs together under the configured policy.
//!
//! Admission is *optimistic*: a job's admit time is computed from the
//! completion times the farm predicts at the moment of the decision, and
//! admitting the job then slows those very completions down. Re-simulating
//! after every admission keeps the whole schedule deterministic and
//! reproducible — the admit times are the runtime's view at decision time,
//! exactly as a real batch scheduler's would be.

use std::fmt;

use dmsim::StatsSnapshot;

use crate::capture::JobProfile;
use crate::farm::{simulate, FarmConfig, FarmJob, FarmReport, FarmSim};
use crate::obs::{ObsEvent, ObsKind, Sampler, WorkloadObserver};
use crate::policy::Policy;

/// A job submission the runtime refuses to admit. Raised by
/// [`run_workload`], [`crate::run_workload_live`] and
/// [`crate::run_workload_guarded`] before anything runs — a malformed
/// batch never reaches the farm, and never panics the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The job's profile has zero ranks: there is nothing to schedule.
    NoRanks { job: String },
    /// The job wants more ranks (= logical disks) than the farm has
    /// ([`WorkloadConfig::disks`] when nonzero).
    CapacityExceeded {
        job: String,
        ranks: usize,
        disks: usize,
    },
    /// Two jobs share an id; reports and fault streams would collide.
    DuplicateJobId { job: String },
    /// A submission time is NaN or infinite; admission order would be
    /// undefined.
    BadSubmitTime { job: String, submit: f64 },
    /// The job's profile is structurally unsound (non-finite or negative
    /// request spans, stream/rank count mismatch) — replaying it would
    /// poison the farm's time arithmetic. See
    /// [`JobProfile::validate`](crate::capture::JobProfile::validate).
    MalformedProfile { job: String, reason: String },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::NoRanks { job } => {
                write!(f, "job {job:?}: profile has zero ranks")
            }
            AdmissionError::CapacityExceeded { job, ranks, disks } => write!(
                f,
                "job {job:?}: wants {ranks} ranks but the farm has {disks} disks"
            ),
            AdmissionError::DuplicateJobId { job } => {
                write!(f, "job id {job:?} submitted more than once")
            }
            AdmissionError::BadSubmitTime { job, submit } => {
                write!(f, "job {job:?}: submit time {submit} is not finite")
            }
            AdmissionError::MalformedProfile { job, reason } => {
                write!(f, "job {job:?}: malformed profile: {reason}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Validate a batch before admission: every job has at least one rank, a
/// finite submit time and a structurally sound profile, fits the farm, and
/// carries a unique id.
pub(crate) fn validate_specs(specs: &[JobSpec], disks: usize) -> Result<(), AdmissionError> {
    let mut seen: Vec<&str> = Vec::with_capacity(specs.len());
    for spec in specs {
        if spec.profile.nprocs() == 0 {
            return Err(AdmissionError::NoRanks {
                job: spec.name.clone(),
            });
        }
        if disks > 0 && spec.profile.nprocs() > disks {
            return Err(AdmissionError::CapacityExceeded {
                job: spec.name.clone(),
                ranks: spec.profile.nprocs(),
                disks,
            });
        }
        if !spec.submit.is_finite() {
            return Err(AdmissionError::BadSubmitTime {
                job: spec.name.clone(),
                submit: spec.submit,
            });
        }
        if let Err(reason) = spec.profile.validate() {
            return Err(AdmissionError::MalformedProfile {
                job: spec.name.clone(),
                reason,
            });
        }
        if seen.contains(&spec.name.as_str()) {
            return Err(AdmissionError::DuplicateJobId {
                job: spec.name.clone(),
            });
        }
        seen.push(&spec.name);
    }
    Ok(())
}

/// One job submitted to the workload runtime.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name (job type, bench label…).
    pub name: String,
    /// Captured solo profile (see [`crate::capture::profile`]).
    pub profile: JobProfile,
    /// Submission time on the workload clock.
    pub submit: f64,
    /// Fair-share weight.
    pub weight: f64,
    /// Deadline slack for [`Policy::Deadline`].
    pub qos_slack: f64,
}

impl JobSpec {
    /// A job submitted at time zero with unit weight and a solo-makespan
    /// deadline slack.
    pub fn new(name: impl Into<String>, profile: JobProfile) -> JobSpec {
        let qos_slack = profile.makespan();
        JobSpec {
            name: name.into(),
            profile,
            submit: 0.0,
            weight: 1.0,
            qos_slack,
        }
    }

    /// Same job with a different fair-share weight.
    pub fn with_weight(mut self, weight: f64) -> JobSpec {
        self.weight = weight;
        self
    }

    /// Same job with a different submission time.
    pub fn with_submit(mut self, submit: f64) -> JobSpec {
        self.submit = submit;
        self
    }
}

/// Workload runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Disk service-order policy.
    pub policy: Policy,
    /// Maximum jobs running concurrently (0 = unlimited). Admission holds
    /// later submissions until a predicted completion frees a slot.
    pub max_concurrent: usize,
    /// Elevator seek penalty, seconds per non-contiguous head movement.
    pub seek_penalty: f64,
    /// Record the per-disk queue trace in the final replay.
    pub trace: bool,
    /// Farm capacity in logical disks. Zero (the default) sizes the farm
    /// to the widest job; nonzero makes a job wanting more ranks an
    /// [`AdmissionError::CapacityExceeded`].
    pub disks: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            policy: Policy::default(),
            max_concurrent: 0,
            seek_penalty: 0.0,
            trace: false,
            disks: 0,
        }
    }
}

/// Outcome of one job in the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Display name from the spec.
    pub name: String,
    /// Job tag the runtime assigned (1-based; tag 0 is reserved for the
    /// legacy single-job path).
    pub job: u32,
    /// Submission time.
    pub submit: f64,
    /// Admission time the runtime granted.
    pub admit: f64,
    /// Completion on the farm clock.
    pub completion: f64,
    /// Solo makespan of the profile (the no-contention baseline).
    pub solo_makespan: f64,
    /// Requests served for this job.
    pub requests: u64,
    /// Sum of queueing waits.
    pub total_wait: f64,
    /// Largest single queueing wait.
    pub max_wait: f64,
    /// Faults injected into the job's capture run (all kinds).
    pub faults_injected: u64,
    /// Disk requests the capture run re-issued under the retry policy.
    pub io_retries: u64,
    /// Message re-transmissions after injected drops in the capture run.
    pub msg_retries: u64,
}

impl JobReport {
    /// Turnaround: submission to completion.
    pub fn turnaround(&self) -> f64 {
        self.completion - self.submit
    }

    /// Slowdown of the running phase vs the solo baseline (1.0 = no
    /// contention effect).
    pub fn stretch(&self) -> f64 {
        if self.solo_makespan > 0.0 {
            (self.completion - self.admit) / self.solo_makespan
        } else {
            1.0
        }
    }
}

/// Result of running a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Per-job outcomes, in submission-slice order.
    pub jobs: Vec<JobReport>,
    /// The final farm replay (served log, per-disk metrics, queue trace).
    pub farm: FarmReport,
    /// Policy the workload ran under.
    pub policy: Policy,
}

impl WorkloadReport {
    /// Workload makespan: the latest completion.
    pub fn makespan(&self) -> f64 {
        self.jobs.iter().map(|j| j.completion).fold(0.0, f64::max)
    }
}

/// Admit and run `specs` against the shared farm.
///
/// Malformed batches (zero-rank jobs, duplicate ids, non-finite submit
/// times, jobs wider than [`WorkloadConfig::disks`]) are refused with a
/// typed [`AdmissionError`] before anything runs.
pub fn run_workload(
    specs: &[JobSpec],
    cfg: &WorkloadConfig,
) -> Result<WorkloadReport, AdmissionError> {
    validate_specs(specs, cfg.disks)?;
    let admitted = admission_schedule(specs, cfg);
    // Final replay, with tracing if requested.
    let farm = simulate(
        &farm_jobs(specs, &admitted),
        &FarmConfig {
            policy: cfg.policy,
            seek_penalty: cfg.seek_penalty,
            trace: cfg.trace,
            observe: false,
        },
    );
    Ok(build_report(specs, &admitted, farm, cfg.policy))
}

/// The deterministic admission schedule: `(spec index, admit time)` in
/// admission order. Shared by the plain and observed runtimes so both
/// replay the exact same farm input.
fn admission_schedule(specs: &[JobSpec], cfg: &WorkloadConfig) -> Vec<(usize, f64)> {
    // Deterministic admission order: submission time, then slice position.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by(|&a, &b| {
        specs[a]
            .submit
            .partial_cmp(&specs[b].submit)
            .unwrap()
            .then(a.cmp(&b))
    });

    let farm_cfg = FarmConfig {
        policy: cfg.policy,
        seek_penalty: cfg.seek_penalty,
        trace: false,
        observe: false,
    };
    // (spec index, admit time) of everything admitted so far.
    let mut admitted: Vec<(usize, f64)> = Vec::new();
    let mut last_report: Option<FarmReport> = None;
    for &idx in &order {
        let spec = &specs[idx];
        let admit = if cfg.max_concurrent == 0 || admitted.len() < cfg.max_concurrent {
            spec.submit
        } else {
            // A slot frees when all but (C - 1) of the previously admitted
            // jobs have completed: take the (n - C + 1)-th smallest
            // predicted completion.
            let completions = &last_report
                .as_ref()
                .expect("simulated after admission")
                .jobs;
            let mut done: Vec<f64> = completions.iter().map(|j| j.completion).collect();
            done.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let slot_free = done[admitted.len() - cfg.max_concurrent];
            spec.submit.max(slot_free)
        };
        admitted.push((idx, admit));
        last_report = Some(simulate(&farm_jobs(specs, &admitted), &farm_cfg));
    }
    admitted
}

/// The farm's job slice for an admission schedule.
fn farm_jobs<'a>(specs: &'a [JobSpec], admitted: &[(usize, f64)]) -> Vec<FarmJob<'a>> {
    admitted
        .iter()
        .map(|&(i, base)| FarmJob {
            job: i as u32 + 1,
            profile: &specs[i].profile,
            base,
            weight: specs[i].weight,
            qos_slack: specs[i].qos_slack,
        })
        .collect()
}

/// Assemble the report in original spec order.
fn build_report(
    specs: &[JobSpec],
    admitted: &[(usize, f64)],
    farm: FarmReport,
    policy: Policy,
) -> WorkloadReport {
    let mut jobs_out: Vec<Option<JobReport>> = vec![None; specs.len()];
    for (pos, &(i, admit)) in admitted.iter().enumerate() {
        let qs = &farm.jobs[pos];
        jobs_out[i] = Some(JobReport {
            name: specs[i].name.clone(),
            job: i as u32 + 1,
            submit: specs[i].submit,
            admit,
            completion: qs.completion,
            solo_makespan: specs[i].profile.makespan(),
            requests: qs.requests,
            total_wait: qs.total_wait,
            max_wait: qs.max_wait,
            faults_injected: specs[i].profile.faults_injected,
            io_retries: specs[i].profile.io_retries,
            msg_retries: specs[i].profile.msg_retries,
        });
    }
    WorkloadReport {
        jobs: jobs_out
            .into_iter()
            .map(|j| j.expect("every spec admitted"))
            .collect(),
        farm,
        policy,
    }
}

/// [`run_workload`] with the observatory attached: the same admission
/// schedule and a bitwise-identical report, but the final replay streams
/// [`ObsEvent`]s (admissions, dispatches, completions) to `observer` and
/// samples the time series on the `sample_every` virtual-time cadence.
///
/// The replay advances the resumable farm chunk by chunk on the sample
/// grid; chunked replay is bitwise outcome-invariant, so observation is
/// transparent — asserted by tests comparing against [`run_workload`].
pub fn run_workload_observed(
    specs: &[JobSpec],
    cfg: &WorkloadConfig,
    sample_every: f64,
    observer: &mut dyn WorkloadObserver,
) -> Result<WorkloadReport, AdmissionError> {
    validate_specs(specs, cfg.disks)?;
    let admitted = admission_schedule(specs, cfg);
    let jobs = farm_jobs(specs, &admitted);
    // Size the farm exactly as `simulate` would, so traces match bitwise.
    let ndisks = jobs.iter().map(|j| j.profile.nprocs()).max().unwrap_or(0);
    let mut sim = FarmSim::new(
        ndisks,
        FarmConfig {
            policy: cfg.policy,
            seek_penalty: cfg.seek_penalty,
            trace: cfg.trace,
            observe: true,
        },
    );
    let slots: Vec<usize> = jobs.iter().map(|j| sim.admit(j)).collect();

    // Admission events, stamped at the granted admit time.
    let mut admits: Vec<ObsEvent> = admitted
        .iter()
        .map(|&(i, base)| ObsEvent {
            t: base,
            job: i as u32 + 1,
            kind: ObsKind::Admitted {
                attempt: 1,
                resumed: false,
            },
        })
        .collect();
    admits.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap().then(a.job.cmp(&b.job)));
    let mut next_admit = 0usize;

    let mut sampler = Sampler::new(sample_every, ndisks);
    let mut reported = vec![false; slots.len()];
    loop {
        let t = sampler.due(f64::INFINITY).expect("the grid is unbounded");
        sim.run_until(t);
        let mut batch: Vec<ObsEvent> = Vec::new();
        while next_admit < admits.len() && admits[next_admit].t <= t {
            batch.push(admits[next_admit].clone());
            next_admit += 1;
        }
        batch.extend(sim.drain_obs());
        for (pos, &slot) in slots.iter().enumerate() {
            if !reported[pos] && sim.job_done(slot) {
                reported[pos] = true;
                batch.push(ObsEvent {
                    // Stamped at the detecting grid point; the actual
                    // completion rides in the payload.
                    t,
                    job: admitted[pos].0 as u32 + 1,
                    kind: ObsKind::Completed {
                        completion: sim.completion(slot).expect("job is done"),
                        recovered: false,
                    },
                });
            }
        }
        batch.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());
        for e in &batch {
            observer.event(e);
        }
        // Chaos counters attributable to the workload so far: the capture
        // counters of every job admitted by `t` (the sampler stores the
        // delta between consecutive samples).
        let mut cum = StatsSnapshot::default();
        for &(i, base) in &admitted {
            if base <= t {
                let p = &specs[i].profile;
                cum = cum.merge(&StatsSnapshot::fault_counts(
                    p.faults_injected,
                    p.io_retries,
                    p.msg_retries,
                ));
            }
        }
        let s = sampler.take(&sim, cum);
        observer.sample(&s);
        if reported.iter().all(|&r| r) {
            break;
        }
    }
    let farm = sim.finish();
    Ok(build_report(specs, &admitted, farm, cfg.policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::IoReq;

    fn profile(n: usize, service: f64) -> JobProfile {
        let reqs: Vec<IoReq> = (0..n)
            .map(|i| IoReq {
                t0: i as f64 * service,
                t1: (i as f64 + 1.0) * service,
                requests: 1,
                bytes: 64,
                offset: Some(64 * i as u64),
                write: false,
            })
            .collect();
        JobProfile {
            rank_finish: vec![n as f64 * service],
            streams: vec![reqs],
            ..JobProfile::default()
        }
    }

    #[test]
    fn single_job_default_policy_matches_solo_exactly() {
        let p = profile(8, 1.0);
        let rep = run_workload(
            &[JobSpec::new("solo", p.clone())],
            &WorkloadConfig::default(),
        )
        .unwrap();
        assert_eq!(rep.jobs[0].completion.to_bits(), p.makespan().to_bits());
        assert_eq!(rep.jobs[0].total_wait, 0.0);
        assert_eq!(rep.jobs[0].stretch(), 1.0);
    }

    #[test]
    fn admission_staggers_beyond_the_concurrency_cap() {
        let p = profile(4, 1.0);
        let specs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::new(format!("j{i}"), p.clone()))
            .collect();
        let rep = run_workload(
            &specs,
            &WorkloadConfig {
                policy: Policy::Fifo,
                max_concurrent: 1,
                ..WorkloadConfig::default()
            },
        )
        .unwrap();
        // Serial admission: each job starts when the previous completes.
        assert_eq!(rep.jobs[0].admit, 0.0);
        assert_eq!(rep.jobs[1].admit, rep.jobs[0].completion);
        assert_eq!(rep.jobs[2].admit, rep.jobs[1].completion);
        // Serialized jobs never queue against each other.
        assert!(rep.jobs.iter().all(|j| j.total_wait == 0.0));
    }

    #[test]
    fn unlimited_concurrency_admits_everything_at_submit() {
        let p = profile(4, 1.0);
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(format!("j{i}"), p.clone()))
            .collect();
        let rep = run_workload(
            &specs,
            &WorkloadConfig {
                policy: Policy::Fifo,
                ..WorkloadConfig::default()
            },
        )
        .unwrap();
        assert!(rep.jobs.iter().all(|j| j.admit == j.submit));
        assert!(
            rep.makespan() > p.makespan(),
            "contention stretches the batch"
        );
    }

    #[test]
    fn workload_is_deterministic() {
        let p = profile(6, 0.5);
        let specs: Vec<JobSpec> = (0..5)
            .map(|i| JobSpec::new(format!("j{i}"), p.clone()).with_weight(1.0 + i as f64))
            .collect();
        let cfg = WorkloadConfig {
            policy: Policy::FairShare,
            max_concurrent: 3,
            ..WorkloadConfig::default()
        };
        let a = run_workload(&specs, &cfg).unwrap();
        let b = run_workload(&specs, &cfg).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.farm.served, b.farm.served);
    }
}
