//! The modeled disk-farm server layer.
//!
//! One simulated physical disk per rank id: job streams captured by
//! [`crate::capture`] feed per-disk request queues, and a
//! [`Policy`](crate::Policy) decides the service order. The replay is
//! closed-loop — a stream's next request arrives only after its previous
//! one finished plus the solo inter-request gap — so queueing delay
//! propagates through each job exactly once, and the whole farm is a pure
//! function of the profiles and the policy.
//!
//! Arithmetic is arranged so the uncontended case is *bitwise* exact: a
//! request that starts at its arrival with zero accumulated lag finishes at
//! its original solo end time (no re-derivation through `t0 + (t1 - t0)`,
//! which float non-associativity would perturb). Single-job replays under
//! FIFO therefore reproduce the pre-farm simulated times byte-for-byte.

use crate::capture::{IoReq, JobProfile};
use crate::policy::Policy;
use ooc_trace::{Args, Category, Trace, TraceConfig, Tracer, Track};

/// One job's standing in the farm: its profile, admission time and QoS.
#[derive(Debug, Clone, Copy)]
pub struct FarmJob<'a> {
    /// Workload job tag (nonzero for real workload members; the tag also
    /// seeds the job's fault/RNG streams in the executor).
    pub job: u32,
    /// The captured solo profile being replayed.
    pub profile: &'a JobProfile,
    /// Admission time: every request arrival and the completion shift by
    /// this base. Zero means "started with the farm".
    pub base: f64,
    /// Fair-share weight (higher = larger bandwidth share).
    pub weight: f64,
    /// Deadline slack for [`Policy::Deadline`]: a request arriving at `t`
    /// carries deadline `t + qos_slack`.
    pub qos_slack: f64,
}

impl<'a> FarmJob<'a> {
    /// A job admitted at time zero with unit weight and a solo-makespan
    /// deadline slack.
    pub fn new(job: u32, profile: &'a JobProfile) -> FarmJob<'a> {
        FarmJob {
            job,
            profile,
            base: 0.0,
            weight: 1.0,
            qos_slack: profile.makespan(),
        }
    }
}

/// Farm configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarmConfig {
    /// Service-order policy at every disk.
    pub policy: Policy,
    /// Extra seconds the elevator model charges when the chosen request is
    /// not contiguous with the previous head position. Zero (the default)
    /// keeps total service equal to the captured service time, so policies
    /// differ only in ordering.
    pub seek_penalty: f64,
    /// Record a per-disk queue trace (service spans, enqueue instants,
    /// wait spans, queue-depth counters) exportable to Perfetto.
    pub trace: bool,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            policy: Policy::default(),
            seek_penalty: 0.0,
            trace: false,
        }
    }
}

/// One served request, as logged by the farm replay. The log is the ground
/// truth for the property tests (work conservation, fairness, determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// Disk that served the request.
    pub disk: usize,
    /// Owning job tag.
    pub job: u32,
    /// Position of the request in its stream.
    pub seq: usize,
    /// When the request became ready at the disk.
    pub arrival: f64,
    /// When service began (`start - arrival` is the queueing wait).
    pub start: f64,
    /// When service completed.
    pub finish: f64,
    /// Service duration actually charged (captured service, plus any seek
    /// penalty).
    pub service: f64,
    /// Starting file offset, when the profile recorded one.
    pub offset: Option<u64>,
}

impl Served {
    /// Queueing wait of this request.
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }
}

/// Per-job queue metrics accumulated over the whole farm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobQueueStats {
    /// Job tag.
    pub job: u32,
    /// Requests served.
    pub requests: u64,
    /// Sum of queueing waits, seconds.
    pub total_wait: f64,
    /// Largest single queueing wait, seconds.
    pub max_wait: f64,
    /// Sum of service time charged, seconds.
    pub total_service: f64,
    /// Job completion time on the farm clock: the latest rank finish,
    /// shifted by the admission base and that rank's accumulated lag.
    pub completion: f64,
}

/// Result of one farm replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmReport {
    /// Per-job metrics, parallel to the input job slice.
    pub jobs: Vec<JobQueueStats>,
    /// Every served request, grouped by disk in service order.
    pub served: Vec<Served>,
    /// Per-disk total service time (busy time; the farm never idles while
    /// a request is armed, so busy == sum of service).
    pub disk_busy: Vec<f64>,
    /// Per-disk maximum queue depth observed at a service start (armed
    /// requests, including the one entering service).
    pub max_queue_depth: Vec<usize>,
    /// Per-disk queue timeline (one trace rank per disk) when
    /// [`FarmConfig::trace`] was set. Wait spans overlap by nature, so this
    /// trace is for Perfetto inspection, not for nesting checks.
    pub trace: Option<Trace>,
}

/// `base + t`, exact when `base` is zero (the parity-critical case: a job
/// admitted at 0.0 must replay its solo timestamps bitwise).
#[inline]
fn shift(base: f64, t: f64) -> f64 {
    if base == 0.0 {
        t
    } else {
        base + t
    }
}

/// Per-disk replay state of one job's stream.
struct StreamState<'a> {
    /// Index into the input job slice.
    slot: usize,
    job: u32,
    weight: f64,
    qos_slack: f64,
    base: f64,
    reqs: &'a [IoReq],
    cursor: usize,
    /// Accumulated delay vs the solo schedule (finish − solo finish of the
    /// last served request). Never negative: queueing only pushes later.
    lag: f64,
    /// Finish time of the previously served request: the closed loop arms
    /// the next request no earlier than this.
    floor: f64,
    /// Weighted attained service, for fair-share selection.
    attained: f64,
}

impl StreamState<'_> {
    /// Arrival time of the head request (caller ensures one exists).
    fn arrival(&self) -> f64 {
        let r = &self.reqs[self.cursor];
        let mut a = shift(self.base, r.t0);
        if self.lag != 0.0 {
            a += self.lag;
        }
        a.max(self.floor)
    }
}

/// Selection key: lexicographic (k0, k1, arrival, job), all finite.
struct Key {
    k0: u8,
    k1: f64,
    arrival: f64,
    job: u32,
}

impl Key {
    fn beats(&self, other: &Key) -> bool {
        if self.k0 != other.k0 {
            return self.k0 < other.k0;
        }
        if self.k1 != other.k1 {
            return self.k1 < other.k1;
        }
        if self.arrival != other.arrival {
            return self.arrival < other.arrival;
        }
        self.job < other.job
    }
}

fn key_of(policy: Policy, s: &StreamState, head: Option<u64>) -> Key {
    let arrival = s.arrival();
    let r = &s.reqs[s.cursor];
    let (k0, k1) = match policy {
        Policy::StaticShare => (0, 0.0), // unused: static share bypasses the queue
        Policy::Fifo => (0, 0.0),
        Policy::Elevator => {
            // C-SCAN: requests at or beyond the head sweep first, ordered
            // by offset; the rest wait for the wrap, also by offset.
            let pos = head.unwrap_or(0);
            let off = r.offset.unwrap_or(0);
            (u8::from(off < pos), off as f64)
        }
        Policy::Deadline => (0, arrival + s.qos_slack),
        Policy::FairShare => (0, s.attained / s.weight.max(f64::MIN_POSITIVE)),
    };
    Key {
        k0,
        k1,
        arrival,
        job: s.job,
    }
}

/// Replay all jobs against the shared farm under `cfg`.
pub fn simulate(jobs: &[FarmJob], cfg: &FarmConfig) -> FarmReport {
    let ndisks = jobs.iter().map(|j| j.profile.nprocs()).max().unwrap_or(0);
    let mut report = FarmReport {
        jobs: jobs
            .iter()
            .map(|j| JobQueueStats {
                job: j.job,
                ..JobQueueStats::default()
            })
            .collect(),
        served: Vec::new(),
        disk_busy: vec![0.0; ndisks],
        max_queue_depth: vec![0; ndisks],
        trace: None,
    };
    let mut lags: Vec<Vec<f64>> = Vec::with_capacity(ndisks);
    let mut rank_traces = Vec::new();

    for disk in 0..ndisks {
        let mut streams: Vec<StreamState> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| disk < j.profile.nprocs())
            .map(|(slot, j)| StreamState {
                slot,
                job: j.job,
                weight: j.weight,
                qos_slack: j.qos_slack,
                base: j.base,
                reqs: &j.profile.streams[disk],
                cursor: 0,
                lag: 0.0,
                floor: f64::NEG_INFINITY,
                attained: 0.0,
            })
            .collect();
        let tracer = if cfg.trace {
            Some(Tracer::new(disk, TraceConfig::detailed()))
        } else {
            None
        };
        run_disk(disk, &mut streams, cfg, tracer.as_ref(), &mut report);
        let mut row = vec![0.0f64; jobs.len()];
        for s in &streams {
            row[s.slot] = s.lag;
        }
        lags.push(row);
        if let Some(t) = tracer {
            rank_traces.push(t.finish());
        }
    }

    // Job completion: each rank's remaining (non-I/O) tail after its last
    // request is rigid, so the rank finishes at its solo finish time
    // shifted by the admission base and the stream's final lag.
    for (slot, j) in jobs.iter().enumerate() {
        let mut c = 0.0f64;
        for (rank, &fin) in j.profile.rank_finish.iter().enumerate() {
            let mut f = shift(j.base, fin);
            if lags[rank][slot] != 0.0 {
                f += lags[rank][slot];
            }
            c = c.max(f);
        }
        report.jobs[slot].completion = c;
    }
    if cfg.trace {
        report.trace = Some(Trace { ranks: rank_traces });
    }
    report
}

fn run_disk(
    disk: usize,
    streams: &mut [StreamState],
    cfg: &FarmConfig,
    tracer: Option<&Tracer>,
    report: &mut FarmReport,
) {
    if cfg.policy == Policy::StaticShare {
        // Legacy static divide: no queue. The captured service times were
        // already priced under the cost model's static bandwidth share, so
        // every request is served exactly at its arrival.
        for s in streams {
            for (seq, r) in s.reqs.iter().enumerate() {
                let arrival = shift(s.base, r.t0);
                let finish = shift(s.base, r.t1);
                record(
                    disk,
                    s,
                    seq,
                    r,
                    arrival,
                    arrival,
                    finish,
                    r.service(),
                    1,
                    tracer,
                    report,
                );
            }
        }
        return;
    }

    let mut now = 0.0f64;
    let mut head: Option<u64> = None;
    loop {
        // Earliest arrival among non-exhausted streams.
        let mut min_arrival = f64::INFINITY;
        for s in streams.iter() {
            if s.cursor < s.reqs.len() {
                min_arrival = min_arrival.min(s.arrival());
            }
        }
        if !min_arrival.is_finite() {
            break;
        }
        // Work conservation: never idle past the earliest armed request.
        if now < min_arrival {
            now = min_arrival;
        }
        // Armed set and policy selection.
        let mut pick: Option<usize> = None;
        let mut best: Option<Key> = None;
        let mut depth = 0usize;
        for (i, s) in streams.iter().enumerate() {
            if s.cursor < s.reqs.len() && s.arrival() <= now {
                depth += 1;
                let k = key_of(cfg.policy, s, head);
                if best.as_ref().is_none_or(|b| k.beats(b)) {
                    best = Some(k);
                    pick = Some(i);
                }
            }
        }
        let i = pick.expect("an armed stream exists at `now`");
        let s = &mut streams[i];
        let r = &s.reqs[s.cursor];
        let seq = s.cursor;
        let arrival = s.arrival();
        let mut service = r.service();
        if cfg.seek_penalty > 0.0 {
            if let (Some(h), Some(o)) = (head, r.offset) {
                if o != h {
                    service += cfg.seek_penalty;
                }
            }
        }
        let start = now;
        // Bitwise-exact fast path: an undisturbed request keeps its solo
        // finish time instead of re-deriving it as start + (t1 - t0).
        let finish = if s.base == 0.0 && s.lag == 0.0 && start == r.t0 && service == r.service() {
            r.t1
        } else {
            start + service
        };
        record(
            disk, s, seq, r, arrival, start, finish, service, depth, tracer, report,
        );
        if let Some(o) = r.offset {
            head = Some(o + r.bytes);
        }
        now = finish;
    }
}

/// Book-keep one served request: advance the stream, update its lag and
/// attained service, log it, accumulate job metrics, and emit trace events.
#[allow(clippy::too_many_arguments)]
fn record(
    disk: usize,
    s: &mut StreamState,
    seq: usize,
    r: &IoReq,
    arrival: f64,
    start: f64,
    finish: f64,
    service: f64,
    depth: usize,
    tracer: Option<&Tracer>,
    report: &mut FarmReport,
) {
    let solo_finish = shift(s.base, r.t1);
    s.lag = if finish == solo_finish {
        0.0
    } else {
        (finish - solo_finish).max(0.0)
    };
    s.floor = finish;
    s.attained += service;
    s.cursor = seq + 1;

    report.served.push(Served {
        disk,
        job: s.job,
        seq,
        arrival,
        start,
        finish,
        service,
        offset: r.offset,
    });
    report.disk_busy[disk] += service;
    report.max_queue_depth[disk] = report.max_queue_depth[disk].max(depth);
    let js = &mut report.jobs[s.slot];
    js.requests += 1;
    let wait = start - arrival;
    js.total_wait += wait;
    js.max_wait = js.max_wait.max(wait);
    js.total_service += service;

    if let Some(tr) = tracer {
        let name = format!("j{}", s.job);
        tr.instant(
            Category::Queue,
            &format!("enqueue:{name}"),
            arrival,
            Args::io(r.requests, r.bytes),
        );
        if wait > 0.0 {
            // Waits of different requests overlap freely; they live on the
            // overlap track and are not nesting-checked.
            tr.span(
                Category::Queue,
                &format!("wait:{name}"),
                arrival,
                start,
                Track::Overlap,
                Args::io(r.requests, r.bytes),
            );
        }
        let cat = if r.write {
            Category::DiskWrite
        } else {
            Category::DiskRead
        };
        let mut args = Args::io(r.requests, r.bytes);
        if let Some(o) = r.offset {
            args = args.with_offset(o);
        }
        tr.span(
            cat,
            &format!("service:{name}"),
            start,
            finish,
            Track::Main,
            args,
        );
        tr.counter("queue_depth", start, depth as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A profile with one rank and evenly spaced unit requests.
    fn uniform_profile(n: usize, gap: f64, service: f64) -> JobProfile {
        let mut reqs = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            reqs.push(IoReq {
                t0: t,
                t1: t + service,
                requests: 1,
                bytes: 64,
                offset: Some(64 * i as u64),
                write: false,
            });
            t += service + gap;
        }
        JobProfile {
            rank_finish: vec![t],
            streams: vec![reqs],
        }
    }

    #[test]
    fn solo_fifo_replay_is_bitwise_exact() {
        let p = uniform_profile(10, 0.25, 1.0);
        let jobs = [FarmJob::new(1, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Fifo,
                ..FarmConfig::default()
            },
        );
        for sv in &rep.served {
            assert_eq!(sv.wait(), 0.0);
            let orig = &p.streams[0][sv.seq];
            assert_eq!(sv.start.to_bits(), orig.t0.to_bits());
            assert_eq!(sv.finish.to_bits(), orig.t1.to_bits());
        }
        assert_eq!(
            rep.jobs[0].completion.to_bits(),
            p.makespan().to_bits(),
            "solo completion is the solo makespan, bitwise"
        );
    }

    #[test]
    fn static_share_ignores_contention_entirely() {
        let p = uniform_profile(5, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(&jobs, &FarmConfig::default());
        assert!(rep.jobs.iter().all(|j| j.total_wait == 0.0));
        assert_eq!(rep.jobs[0].completion, rep.jobs[1].completion);
        assert_eq!(rep.jobs[0].completion.to_bits(), p.makespan().to_bits());
    }

    #[test]
    fn two_backlogged_jobs_under_fifo_interleave_and_delay() {
        let p = uniform_profile(4, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Fifo,
                ..FarmConfig::default()
            },
        );
        // One disk, 8 unit requests, no gaps: busy the whole span.
        assert_eq!(rep.disk_busy[0], 8.0);
        assert!(rep.jobs.iter().any(|j| j.total_wait > 0.0));
        // Completion reflects the queueing: both jobs finish later than solo.
        assert!(rep.jobs[0].completion > p.makespan());
        assert!(rep.jobs[1].completion > p.makespan());
        assert_eq!(rep.max_queue_depth[0], 2);
    }

    #[test]
    fn elevator_orders_by_offset_and_charges_seeks() {
        // Two jobs whose first requests are armed together; job 2's offset
        // is lower, so a fresh head (None -> pos 0) serves it first.
        let mut p1 = uniform_profile(1, 0.0, 1.0);
        p1.streams[0][0].offset = Some(1000);
        let p2 = uniform_profile(1, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p1), FarmJob::new(2, &p2)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Elevator,
                ..FarmConfig::default()
            },
        );
        assert_eq!(rep.served[0].job, 2);
        assert_eq!(rep.served[1].job, 1);
        // With a seek penalty, the non-contiguous second request costs more.
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Elevator,
                seek_penalty: 0.5,
                ..FarmConfig::default()
            },
        );
        assert_eq!(rep.served[1].service, 1.5);
    }

    #[test]
    fn deadline_prefers_the_tighter_qos() {
        let p = uniform_profile(1, 0.0, 1.0);
        let mut tight = FarmJob::new(1, &p);
        tight.qos_slack = 0.5;
        let mut loose = FarmJob::new(2, &p);
        loose.qos_slack = 100.0;
        let rep = simulate(
            &[loose, tight],
            &FarmConfig {
                policy: Policy::Deadline,
                ..FarmConfig::default()
            },
        );
        assert_eq!(rep.served[0].job, 1, "tighter deadline is served first");
    }

    #[test]
    fn farm_trace_records_queue_events() {
        let p = uniform_profile(3, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Fifo,
                trace: true,
                ..FarmConfig::default()
            },
        );
        let trace = rep.trace.expect("tracing was requested");
        assert_eq!(trace.ranks.len(), 1);
        let evs = &trace.ranks[0].events;
        assert!(evs
            .iter()
            .any(|e| e.cat == Category::Queue && e.name.starts_with("enqueue")));
        assert!(evs
            .iter()
            .any(|e| e.cat == Category::Queue && e.name.starts_with("wait")));
        assert!(evs.iter().any(|e| e.cat == Category::DiskRead));
        assert!(evs
            .iter()
            .any(|e| e.name == "queue_depth" && e.args.value == Some(2.0)));
        // The queue trace exports to Perfetto JSON without panicking.
        let json = ooc_trace::perfetto::to_chrome_json(&trace);
        ooc_trace::json::parse(&json).expect("valid JSON");
    }
}
