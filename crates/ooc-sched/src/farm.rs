//! The modeled disk-farm server layer.
//!
//! One simulated physical disk per rank id: job streams captured by
//! [`crate::capture`] feed per-disk request queues, and a
//! [`Policy`](crate::Policy) decides the service order. The replay is
//! closed-loop — a stream's next request arrives only after its previous
//! one finished plus the solo inter-request gap — so queueing delay
//! propagates through each job exactly once, and the whole farm is a pure
//! function of the profiles and the policy.
//!
//! Arithmetic is arranged so the uncontended case is *bitwise* exact: a
//! request that starts at its arrival with zero accumulated lag finishes at
//! its original solo end time (no re-derivation through `t0 + (t1 - t0)`,
//! which float non-associativity would perturb). Single-job replays under
//! FIFO therefore reproduce the pre-farm simulated times byte-for-byte.

use crate::capture::{IoReq, JobProfile};
use crate::obs::{ObsEvent, ObsKind};
use crate::policy::Policy;
use ooc_trace::{Args, Category, Trace, TraceConfig, Tracer, Track};

/// One job's standing in the farm: its profile, admission time and QoS.
#[derive(Debug, Clone, Copy)]
pub struct FarmJob<'a> {
    /// Workload job tag (nonzero for real workload members; the tag also
    /// seeds the job's fault/RNG streams in the executor).
    pub job: u32,
    /// The captured solo profile being replayed.
    pub profile: &'a JobProfile,
    /// Admission time: every request arrival and the completion shift by
    /// this base. Zero means "started with the farm".
    pub base: f64,
    /// Fair-share weight (higher = larger bandwidth share).
    pub weight: f64,
    /// Deadline slack for [`Policy::Deadline`]: a request arriving at `t`
    /// carries deadline `t + qos_slack`.
    pub qos_slack: f64,
}

impl<'a> FarmJob<'a> {
    /// A job admitted at time zero with unit weight and a solo-makespan
    /// deadline slack.
    pub fn new(job: u32, profile: &'a JobProfile) -> FarmJob<'a> {
        FarmJob {
            job,
            profile,
            base: 0.0,
            weight: 1.0,
            qos_slack: profile.makespan(),
        }
    }
}

/// Farm configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarmConfig {
    /// Service-order policy at every disk.
    pub policy: Policy,
    /// Extra seconds the elevator model charges when the chosen request is
    /// not contiguous with the previous head position. Zero (the default)
    /// keeps total service equal to the captured service time, so policies
    /// differ only in ordering.
    pub seek_penalty: f64,
    /// Record a per-disk queue trace (service spans, enqueue instants,
    /// wait spans, queue-depth counters) exportable to Perfetto.
    pub trace: bool,
    /// Publish [`ObsKind::Dispatched`] events on the observatory bus
    /// (collected via [`FarmSim::drain_obs`]). Purely additive: the
    /// replay's scheduling decisions and trace are unaffected.
    pub observe: bool,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            policy: Policy::default(),
            seek_penalty: 0.0,
            trace: false,
            observe: false,
        }
    }
}

/// One served request, as logged by the farm replay. The log is the ground
/// truth for the property tests (work conservation, fairness, determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// Disk that served the request.
    pub disk: usize,
    /// Owning job tag.
    pub job: u32,
    /// Position of the request in its stream.
    pub seq: usize,
    /// When the request became ready at the disk.
    pub arrival: f64,
    /// When service began (`start - arrival` is the queueing wait).
    pub start: f64,
    /// When service completed.
    pub finish: f64,
    /// Service duration actually charged (captured service, plus any seek
    /// penalty).
    pub service: f64,
    /// Starting file offset, when the profile recorded one.
    pub offset: Option<u64>,
}

impl Served {
    /// Queueing wait of this request.
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }
}

/// Per-job queue metrics accumulated over the whole farm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobQueueStats {
    /// Job tag.
    pub job: u32,
    /// Requests served.
    pub requests: u64,
    /// Sum of queueing waits, seconds.
    pub total_wait: f64,
    /// Largest single queueing wait, seconds.
    pub max_wait: f64,
    /// Sum of service time charged, seconds.
    pub total_service: f64,
    /// Job completion time on the farm clock: the latest rank finish,
    /// shifted by the admission base and that rank's accumulated lag.
    pub completion: f64,
}

/// Result of one farm replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmReport {
    /// Per-job metrics, parallel to the input job slice.
    pub jobs: Vec<JobQueueStats>,
    /// Every served request, grouped by disk in service order.
    pub served: Vec<Served>,
    /// Per-disk total service time (busy time; the farm never idles while
    /// a request is armed, so busy == sum of service).
    pub disk_busy: Vec<f64>,
    /// Per-disk maximum queue depth observed at a service start (armed
    /// requests, including the one entering service).
    pub max_queue_depth: Vec<usize>,
    /// Per-disk queue timeline (one trace rank per disk) when
    /// [`FarmConfig::trace`] was set. Wait spans overlap by nature, so
    /// they live on the nesting-exempt [`Track::Queue`]; the whole trace
    /// passes [`ooc_trace::check_well_nested`].
    pub trace: Option<Trace>,
}

/// `base + t`, exact when `base` is zero (the parity-critical case: a job
/// admitted at 0.0 must replay its solo timestamps bitwise).
#[inline]
fn shift(base: f64, t: f64) -> f64 {
    if base == 0.0 {
        t
    } else {
        base + t
    }
}

/// Per-disk replay state of one job's stream.
struct StreamState<'a> {
    /// Admission slot: index into the sim's job list.
    slot: usize,
    job: u32,
    weight: f64,
    qos_slack: f64,
    base: f64,
    /// Solo-time re-anchor for resumed jobs: arrivals and finishes use
    /// `t − origin`, so a stream resumed from a checkpoint watermark
    /// replays its remaining requests relative to its new admission base.
    /// Zero for fresh admissions — the bitwise-parity case.
    origin: f64,
    /// Profile stream index: the rank whose requests these are, and the
    /// disk the stream started on before any migration.
    rank: usize,
    reqs: &'a [IoReq],
    cursor: usize,
    /// Accumulated delay vs the solo schedule (finish − solo finish of the
    /// last served request). Never negative: queueing only pushes later.
    lag: f64,
    /// Finish time of the previously served request: the closed loop arms
    /// the next request no earlier than this.
    floor: f64,
    /// Weighted attained service, for fair-share selection.
    attained: f64,
    /// Injected hang: requests at or past this solo time never arrive, so
    /// the stream makes no further progress until its job is killed.
    hung_at: Option<f64>,
}

impl StreamState<'_> {
    /// Solo time re-anchored for resume (`origin == 0.0` stays bitwise).
    #[inline]
    fn rel(&self, t: f64) -> f64 {
        if self.origin == 0.0 {
            t
        } else {
            t - self.origin
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor >= self.reqs.len()
    }

    /// Whether the head request will never arrive (injected hang).
    fn hung(&self) -> bool {
        match (self.hung_at, self.reqs.get(self.cursor)) {
            (Some(h), Some(r)) => r.t0 >= h,
            _ => false,
        }
    }

    /// Arrival time of the head request (caller ensures one exists); an
    /// injected hang arrives never.
    fn arrival(&self) -> f64 {
        if self.hung() {
            return f64::INFINITY;
        }
        let r = &self.reqs[self.cursor];
        let mut a = shift(self.base, self.rel(r.t0));
        if self.lag != 0.0 {
            a += self.lag;
        }
        a.max(self.floor)
    }
}

/// Selection key: lexicographic (k0, k1, arrival, job), all finite.
struct Key {
    k0: u8,
    k1: f64,
    arrival: f64,
    job: u32,
}

impl Key {
    fn beats(&self, other: &Key) -> bool {
        if self.k0 != other.k0 {
            return self.k0 < other.k0;
        }
        if self.k1 != other.k1 {
            return self.k1 < other.k1;
        }
        if self.arrival != other.arrival {
            return self.arrival < other.arrival;
        }
        self.job < other.job
    }
}

fn key_of(policy: Policy, s: &StreamState, head: Option<u64>) -> Key {
    let arrival = s.arrival();
    let r = &s.reqs[s.cursor];
    let (k0, k1) = match policy {
        Policy::StaticShare => (0, 0.0), // unused: static share bypasses the queue
        Policy::Fifo => (0, 0.0),
        Policy::Elevator => {
            // C-SCAN: requests at or beyond the head sweep first, ordered
            // by offset; the rest wait for the wrap, also by offset.
            let pos = head.unwrap_or(0);
            let off = r.offset.unwrap_or(0);
            (u8::from(off < pos), off as f64)
        }
        Policy::Deadline => (0, arrival + s.qos_slack),
        Policy::FairShare => (0, s.attained / s.weight.max(f64::MIN_POSITIVE)),
    };
    Key {
        k0,
        k1,
        arrival,
        job: s.job,
    }
}

/// Replay all jobs against the shared farm under `cfg`, start to finish.
///
/// The batch entry point: admit everything, run to quiescence, report.
/// Byte-identical to the pre-resumable replay — it is a thin wrapper over
/// [`FarmSim`] with an infinite horizon.
pub fn simulate(jobs: &[FarmJob], cfg: &FarmConfig) -> FarmReport {
    let ndisks = jobs.iter().map(|j| j.profile.nprocs()).max().unwrap_or(0);
    let mut sim = FarmSim::new(ndisks, *cfg);
    for j in jobs {
        sim.admit(j);
    }
    sim.run_to_end();
    sim.finish()
}

/// Per-disk server state that persists across [`FarmSim::run_until`] calls.
struct DiskState {
    now: f64,
    head: Option<u64>,
    alive: bool,
    busy: f64,
    max_depth: usize,
    served: Vec<Served>,
    tracer: Option<Tracer>,
}

/// Per-admission bookkeeping beyond the public stats.
struct JobSlot<'a> {
    profile: &'a JobProfile,
    /// Admission base, for the sampler's in-flight accounting.
    base: f64,
    /// False once the job was removed (completed, preempted, quarantined).
    active: bool,
}

/// A resumable disk-farm replay.
///
/// Where [`simulate`] replays a fixed job set to quiescence, `FarmSim`
/// keeps the whole farm state — per-disk clocks, head positions, queued
/// streams with their closed-loop lag — alive between horizon-bounded
/// advances, so a workload executive can interleave replay with
/// control-plane events on the simulated clock: admit a job mid-timeline,
/// kill a hung one, preempt at a checkpoint watermark and resume later,
/// or fail a disk permanently and migrate its queued streams to the
/// survivors. Everything is a pure function of the admitted profiles and
/// the call sequence; with a single `run_to_end` it is bitwise-identical
/// to [`simulate`].
pub struct FarmSim<'a> {
    cfg: FarmConfig,
    ndisks: usize,
    disks: Vec<DiskState>,
    /// Per-disk queued streams, in admission (then migration) order.
    queues: Vec<Vec<StreamState<'a>>>,
    stats: Vec<JobQueueStats>,
    slots: Vec<JobSlot<'a>>,
    /// Pending observatory events ([`FarmConfig::observe`]), drained by
    /// the executive after each advance.
    obs: Vec<ObsEvent>,
}

impl<'a> FarmSim<'a> {
    /// An empty farm of `ndisks` disks.
    pub fn new(ndisks: usize, cfg: FarmConfig) -> FarmSim<'a> {
        let disks = (0..ndisks)
            .map(|d| DiskState {
                now: 0.0,
                head: None,
                alive: true,
                busy: 0.0,
                max_depth: 0,
                served: Vec::new(),
                tracer: cfg.trace.then(|| Tracer::new(d, TraceConfig::detailed())),
            })
            .collect();
        FarmSim {
            cfg,
            ndisks,
            disks,
            queues: (0..ndisks).map(|_| Vec::new()).collect(),
            stats: Vec::new(),
            slots: Vec::new(),
            obs: Vec::new(),
        }
    }

    /// Number of disks (dead ones included).
    pub fn ndisks(&self) -> usize {
        self.ndisks
    }

    /// Number of disks still alive.
    pub fn alive_disks(&self) -> usize {
        self.disks.iter().filter(|d| d.alive).count()
    }

    /// Admit a fresh job; returns its slot (index into the report's job
    /// list). Arrivals are shifted by `j.base`.
    pub fn admit(&mut self, j: &FarmJob<'a>) -> usize {
        self.admit_streams(j, None)
    }

    /// Admit a job resuming from per-rank request cursors `start` (the
    /// checkpoint watermark): each stream skips its first `start[rank]`
    /// requests and replays the rest re-anchored at `j.base`, preserving
    /// the solo inter-request gaps.
    pub fn admit_resumed(&mut self, j: &FarmJob<'a>, start: &[usize]) -> usize {
        self.admit_streams(j, Some(start))
    }

    fn admit_streams(&mut self, j: &FarmJob<'a>, start: Option<&[usize]>) -> usize {
        let slot = self.stats.len();
        self.stats.push(JobQueueStats {
            job: j.job,
            ..JobQueueStats::default()
        });
        self.slots.push(JobSlot {
            profile: j.profile,
            base: j.base,
            active: true,
        });
        for rank in 0..j.profile.nprocs().min(self.ndisks) {
            let reqs: &'a [IoReq] = &j.profile.streams[rank];
            let w = start
                .map(|s| s.get(rank).copied().unwrap_or(0))
                .unwrap_or(0)
                .min(reqs.len());
            // Re-anchor a resumed stream at the watermark request's solo
            // start (or, fully-drained, at its last solo finish so only the
            // rigid compute tail remains).
            let origin = if w == 0 {
                0.0
            } else if w < reqs.len() {
                reqs[w].t0
            } else {
                reqs[w - 1].t1
            };
            let disk = self.route(rank);
            self.queues[disk].push(StreamState {
                slot,
                job: j.job,
                weight: j.weight,
                qos_slack: j.qos_slack,
                base: j.base,
                origin,
                rank,
                reqs,
                cursor: w,
                lag: 0.0,
                floor: f64::NEG_INFINITY,
                attained: 0.0,
                hung_at: None,
            });
        }
        slot
    }

    /// The disk serving streams of `rank`: the rank's own disk, or — after
    /// a disk death — the next surviving disk in cyclic order.
    fn route(&self, rank: usize) -> usize {
        if self.disks[rank].alive {
            return rank;
        }
        (1..self.ndisks)
            .map(|k| (rank + k) % self.ndisks)
            .find(|&d| self.disks[d].alive)
            .expect("at least one disk is alive")
    }

    /// Inject a hang into `slot`'s stream on `rank`: its requests at or
    /// past solo time `after_solo` never arrive, so the job stalls until a
    /// watchdog kills it.
    pub fn hang(&mut self, slot: usize, rank: usize, after_solo: f64) {
        for q in &mut self.queues {
            for s in q.iter_mut() {
                if s.slot == slot && s.rank == rank {
                    s.hung_at = Some(after_solo);
                }
            }
        }
    }

    /// Total requests served for `slot` so far (the watchdog's virtual
    /// progress measure).
    pub fn progress(&self, slot: usize) -> u64 {
        let mut n = 0u64;
        for q in &self.queues {
            for s in q {
                if s.slot == slot {
                    n += s.cursor as u64;
                }
            }
        }
        n
    }

    /// Cumulative busy time of `disk` (sum of charged service so far).
    pub fn busy(&self, disk: usize) -> f64 {
        self.disks[disk].busy
    }

    /// Streams of `disk` with an armed head request at time `t`: arrived
    /// (by `t`), unserved, and not behind an injected hang.
    pub fn queue_depth_at(&self, disk: usize, t: f64) -> usize {
        self.queues[disk]
            .iter()
            .filter(|s| !s.exhausted() && s.arrival() <= t)
            .count()
    }

    /// Jobs admitted by `t` whose streams have not all drained: the
    /// sampler's in-flight count.
    pub fn in_flight_at(&self, t: f64) -> usize {
        (0..self.slots.len())
            .filter(|&slot| {
                self.slots[slot].active && self.slots[slot].base <= t && !self.job_done(slot)
            })
            .count()
    }

    /// `(job tag, requests served, solo total)` for every job on the farm
    /// at time `t`, in admission order — the sampler's progress view.
    pub fn progress_report(&self, t: f64) -> Vec<(u32, u64, u64)> {
        (0..self.slots.len())
            .filter(|&slot| self.slots[slot].active && self.slots[slot].base <= t)
            .map(|slot| {
                (
                    self.stats[slot].job,
                    self.progress(slot),
                    self.slots[slot].profile.total_requests() as u64,
                )
            })
            .collect()
    }

    /// Take the pending observatory events, stable-sorted by time. With
    /// [`FarmConfig::observe`] unset this is always empty. Tied stamps
    /// keep their push order (disk-major, service order), which is
    /// invariant under horizon chunking: a chunk boundary splits serves
    /// strictly before it from the rest on every disk alike.
    pub fn drain_obs(&mut self) -> Vec<ObsEvent> {
        let mut out = std::mem::take(&mut self.obs);
        out.sort_by(|a, b| a.t.total_cmp(&b.t));
        out
    }

    /// Whether every remaining request of `slot` is behind an injected
    /// hang: the job can never progress again on its own.
    pub fn stalled(&self, slot: usize) -> bool {
        let mut any_live = false;
        for q in &self.queues {
            for s in q {
                if s.slot == slot && !s.exhausted() {
                    if !s.hung() {
                        return false;
                    }
                    any_live = true;
                }
            }
        }
        any_live
    }

    /// Whether every stream of `slot` has drained (the job's I/O is done;
    /// only rigid compute tails remain).
    pub fn job_done(&self, slot: usize) -> bool {
        if !self.slots[slot].active {
            return false;
        }
        let mut any = false;
        for q in &self.queues {
            for s in q {
                if s.slot == slot {
                    any = true;
                    if !s.exhausted() {
                        return false;
                    }
                }
            }
        }
        any
    }

    /// Completion time of a drained job: the latest rank finish, shifted
    /// by the admission base, resume anchor, and that stream's final lag.
    /// `None` until [`FarmSim::job_done`].
    pub fn completion(&self, slot: usize) -> Option<f64> {
        if !self.job_done(slot) {
            return None;
        }
        let profile = self.slots[slot].profile;
        let mut c = 0.0f64;
        for q in &self.queues {
            for s in q {
                if s.slot == slot {
                    let mut f = shift(s.base, s.rel(profile.rank_finish[s.rank]));
                    if s.lag != 0.0 {
                        f += s.lag;
                    }
                    c = c.max(f);
                }
            }
        }
        Some(c)
    }

    /// Remove `slot` from the farm (completed, preempted, or quarantined):
    /// its streams leave the queues. Returns the per-rank request cursors
    /// at removal — the executive rolls them back to a checkpoint
    /// watermark for [`FarmSim::admit_resumed`].
    pub fn remove_job(&mut self, slot: usize) -> Vec<usize> {
        let nprocs = self.slots[slot].profile.nprocs();
        let mut cursors = vec![0usize; nprocs];
        for q in &mut self.queues {
            q.retain(|s| {
                if s.slot == slot {
                    cursors[s.rank] = s.cursor;
                    false
                } else {
                    true
                }
            });
        }
        self.slots[slot].active = false;
        cursors
    }

    /// Fail `disk` permanently: it serves nothing further, and its queued
    /// streams migrate to the surviving disks in deterministic cyclic
    /// order, keeping their closed-loop state (cursor, lag, floor).
    /// Requests already served — including one in flight past the caller's
    /// horizon — stand. Returns the number of streams migrated. Panics if
    /// it would kill the last disk.
    pub fn kill_disk(&mut self, disk: usize) -> usize {
        if !self.disks[disk].alive {
            return 0;
        }
        assert!(
            self.disks
                .iter()
                .enumerate()
                .any(|(i, d)| i != disk && d.alive),
            "cannot kill the last surviving disk"
        );
        self.disks[disk].alive = false;
        let mut moving = Vec::new();
        let q = &mut self.queues[disk];
        let mut i = 0;
        while i < q.len() {
            if !q[i].exhausted() {
                moving.push(q.remove(i));
            } else {
                // Drained streams stay: their lag still feeds completion.
                i += 1;
            }
        }
        let alive: Vec<usize> = (0..self.ndisks).filter(|&d| self.disks[d].alive).collect();
        let migrated = moving.len();
        for (k, s) in moving.into_iter().enumerate() {
            self.queues[alive[k % alive.len()]].push(s);
        }
        migrated
    }

    /// Advance every living disk until no request would *start* before
    /// `horizon`. A request entering service just before the horizon runs
    /// to completion (service is not preemptible), possibly leaving the
    /// disk clock past the horizon.
    pub fn run_until(&mut self, horizon: f64) {
        for disk in 0..self.ndisks {
            if self.disks[disk].alive {
                self.run_disk(disk, horizon);
            }
        }
    }

    /// Advance every disk to quiescence (hung streams never arrive and are
    /// left pending).
    pub fn run_to_end(&mut self) {
        self.run_until(f64::INFINITY);
    }

    fn run_disk(&mut self, disk: usize, horizon: f64) {
        let d = &mut self.disks[disk];
        let streams = &mut self.queues[disk];
        let stats = &mut self.stats;
        let observe = self.cfg.observe;
        let obs = &mut self.obs;

        if self.cfg.policy == Policy::StaticShare {
            // Legacy static divide: no queue. The captured service times
            // were already priced under the cost model's static bandwidth
            // share, so every request is served exactly at its arrival —
            // services of different streams overlap freely, so their spans
            // go on the nesting-exempt queue track.
            for s in streams.iter_mut() {
                while !s.exhausted() && !s.hung() {
                    let r = s.reqs[s.cursor];
                    let arrival = shift(s.base, s.rel(r.t0));
                    if arrival >= horizon {
                        break;
                    }
                    let finish = shift(s.base, s.rel(r.t1));
                    let seq = s.cursor;
                    record(
                        disk,
                        d,
                        s,
                        seq,
                        &r,
                        arrival,
                        arrival,
                        finish,
                        r.service(),
                        1,
                        Track::Queue,
                        stats,
                        observe.then_some(&mut *obs),
                    );
                }
            }
            return;
        }

        loop {
            // Earliest arrival among non-exhausted streams.
            let mut min_arrival = f64::INFINITY;
            for s in streams.iter() {
                if !s.exhausted() {
                    min_arrival = min_arrival.min(s.arrival());
                }
            }
            if !min_arrival.is_finite() {
                break;
            }
            // Work conservation: never idle past the earliest armed
            // request — but commit the clock only when the service will
            // actually start inside the horizon, so later admissions can
            // still use the idle gap.
            let start_at = if d.now < min_arrival {
                min_arrival
            } else {
                d.now
            };
            if start_at >= horizon {
                break;
            }
            d.now = start_at;
            // Armed set and policy selection.
            let mut pick: Option<usize> = None;
            let mut best: Option<Key> = None;
            let mut depth = 0usize;
            for (i, s) in streams.iter().enumerate() {
                if !s.exhausted() && s.arrival() <= d.now {
                    depth += 1;
                    let k = key_of(self.cfg.policy, s, d.head);
                    if best.as_ref().is_none_or(|b| k.beats(b)) {
                        best = Some(k);
                        pick = Some(i);
                    }
                }
            }
            // An armed stream must exist at `now` for well-formed
            // profiles; a NaN-poisoned arrival could fail every `<=`
            // comparison above, so degrade to an idle disk instead of
            // panicking (profiles are validated at admission, this is
            // defense in depth for a long-lived daemon).
            let Some(i) = pick else { break };
            let s = &mut streams[i];
            let r = s.reqs[s.cursor];
            let seq = s.cursor;
            let arrival = s.arrival();
            let mut service = r.service();
            if self.cfg.seek_penalty > 0.0 {
                if let (Some(h), Some(o)) = (d.head, r.offset) {
                    if o != h {
                        service += self.cfg.seek_penalty;
                    }
                }
            }
            let start = d.now;
            // Bitwise-exact fast path: an undisturbed request keeps its
            // solo finish time instead of re-deriving it as
            // start + (t1 - t0).
            let finish = if s.base == 0.0
                && s.origin == 0.0
                && s.lag == 0.0
                && start == r.t0
                && service == r.service()
            {
                r.t1
            } else {
                start + service
            };
            record(
                disk,
                d,
                s,
                seq,
                &r,
                arrival,
                start,
                finish,
                service,
                depth,
                Track::Main,
                stats,
                observe.then_some(&mut *obs),
            );
            if let Some(o) = r.offset {
                d.head = Some(o + r.bytes);
            }
            d.now = finish;
        }
    }

    /// Tear the farm down into its report: per-disk served logs
    /// concatenated in disk order, completion times filled in for every
    /// drained job (jobs removed or still pending keep completion 0.0 —
    /// the executive reports their fate separately).
    pub fn finish(mut self) -> FarmReport {
        for slot in 0..self.stats.len() {
            if let Some(c) = self.completion(slot) {
                self.stats[slot].completion = c;
            }
        }
        let mut served = Vec::new();
        let mut disk_busy = Vec::with_capacity(self.ndisks);
        let mut max_queue_depth = Vec::with_capacity(self.ndisks);
        let mut rank_traces = Vec::new();
        let tracing = self.cfg.trace;
        for d in self.disks {
            served.extend(d.served);
            disk_busy.push(d.busy);
            max_queue_depth.push(d.max_depth);
            if let Some(t) = d.tracer {
                rank_traces.push(t.finish());
            }
        }
        FarmReport {
            jobs: self.stats,
            served,
            disk_busy,
            max_queue_depth,
            trace: tracing.then_some(Trace { ranks: rank_traces }),
        }
    }
}

/// Book-keep one served request: advance the stream, update its lag and
/// attained service, log it, accumulate job metrics, and emit trace and
/// observatory events. `service_track` carries the service span: the main
/// track for queueing policies (one request in service at a time), the
/// nesting-exempt queue track for static share (services overlap).
#[allow(clippy::too_many_arguments)]
fn record(
    disk: usize,
    d: &mut DiskState,
    s: &mut StreamState,
    seq: usize,
    r: &IoReq,
    arrival: f64,
    start: f64,
    finish: f64,
    service: f64,
    depth: usize,
    service_track: Track,
    stats: &mut [JobQueueStats],
    obs: Option<&mut Vec<ObsEvent>>,
) {
    let solo_finish = shift(s.base, s.rel(r.t1));
    s.lag = if finish == solo_finish {
        0.0
    } else {
        (finish - solo_finish).max(0.0)
    };
    s.floor = finish;
    s.attained += service;
    s.cursor = seq + 1;

    d.served.push(Served {
        disk,
        job: s.job,
        seq,
        arrival,
        start,
        finish,
        service,
        offset: r.offset,
    });
    d.busy += service;
    d.max_depth = d.max_depth.max(depth);
    let js = &mut stats[s.slot];
    js.requests += 1;
    let wait = start - arrival;
    js.total_wait += wait;
    js.max_wait = js.max_wait.max(wait);
    js.total_service += service;

    if let Some(out) = obs {
        out.push(ObsEvent {
            t: start,
            job: s.job,
            kind: ObsKind::Dispatched {
                disk,
                rank: s.rank,
                seq,
                wait,
                service,
                bytes: r.bytes,
                write: r.write,
            },
        });
    }

    if let Some(tr) = &d.tracer {
        let name = format!("j{}", s.job);
        tr.instant(
            Category::Queue,
            &format!("enqueue:{name}"),
            arrival,
            Args::io(r.requests, r.bytes),
        );
        if wait > 0.0 {
            // Waits of different requests overlap freely; they live on the
            // nesting-exempt queue track.
            tr.span(
                Category::Queue,
                &format!("wait:{name}"),
                arrival,
                start,
                Track::Queue,
                Args::io(r.requests, r.bytes),
            );
        }
        let cat = if r.write {
            Category::DiskWrite
        } else {
            Category::DiskRead
        };
        let mut args = Args::io(r.requests, r.bytes);
        if let Some(o) = r.offset {
            args = args.with_offset(o);
        }
        tr.span(
            cat,
            &format!("service:{name}"),
            start,
            finish,
            service_track,
            args,
        );
        tr.counter(&format!("queue_depth:d{disk}"), start, depth as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A profile with one rank and evenly spaced unit requests.
    fn uniform_profile(n: usize, gap: f64, service: f64) -> JobProfile {
        let mut reqs = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            reqs.push(IoReq {
                t0: t,
                t1: t + service,
                requests: 1,
                bytes: 64,
                offset: Some(64 * i as u64),
                write: false,
            });
            t += service + gap;
        }
        JobProfile {
            rank_finish: vec![t],
            streams: vec![reqs],
            ..JobProfile::default()
        }
    }

    #[test]
    fn solo_fifo_replay_is_bitwise_exact() {
        let p = uniform_profile(10, 0.25, 1.0);
        let jobs = [FarmJob::new(1, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Fifo,
                ..FarmConfig::default()
            },
        );
        for sv in &rep.served {
            assert_eq!(sv.wait(), 0.0);
            let orig = &p.streams[0][sv.seq];
            assert_eq!(sv.start.to_bits(), orig.t0.to_bits());
            assert_eq!(sv.finish.to_bits(), orig.t1.to_bits());
        }
        assert_eq!(
            rep.jobs[0].completion.to_bits(),
            p.makespan().to_bits(),
            "solo completion is the solo makespan, bitwise"
        );
    }

    #[test]
    fn static_share_ignores_contention_entirely() {
        let p = uniform_profile(5, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(&jobs, &FarmConfig::default());
        assert!(rep.jobs.iter().all(|j| j.total_wait == 0.0));
        assert_eq!(rep.jobs[0].completion, rep.jobs[1].completion);
        assert_eq!(rep.jobs[0].completion.to_bits(), p.makespan().to_bits());
    }

    #[test]
    fn two_backlogged_jobs_under_fifo_interleave_and_delay() {
        let p = uniform_profile(4, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Fifo,
                ..FarmConfig::default()
            },
        );
        // One disk, 8 unit requests, no gaps: busy the whole span.
        assert_eq!(rep.disk_busy[0], 8.0);
        assert!(rep.jobs.iter().any(|j| j.total_wait > 0.0));
        // Completion reflects the queueing: both jobs finish later than solo.
        assert!(rep.jobs[0].completion > p.makespan());
        assert!(rep.jobs[1].completion > p.makespan());
        assert_eq!(rep.max_queue_depth[0], 2);
    }

    #[test]
    fn elevator_orders_by_offset_and_charges_seeks() {
        // Two jobs whose first requests are armed together; job 2's offset
        // is lower, so a fresh head (None -> pos 0) serves it first.
        let mut p1 = uniform_profile(1, 0.0, 1.0);
        p1.streams[0][0].offset = Some(1000);
        let p2 = uniform_profile(1, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p1), FarmJob::new(2, &p2)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Elevator,
                ..FarmConfig::default()
            },
        );
        assert_eq!(rep.served[0].job, 2);
        assert_eq!(rep.served[1].job, 1);
        // With a seek penalty, the non-contiguous second request costs more.
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Elevator,
                seek_penalty: 0.5,
                ..FarmConfig::default()
            },
        );
        assert_eq!(rep.served[1].service, 1.5);
    }

    #[test]
    fn deadline_prefers_the_tighter_qos() {
        let p = uniform_profile(1, 0.0, 1.0);
        let mut tight = FarmJob::new(1, &p);
        tight.qos_slack = 0.5;
        let mut loose = FarmJob::new(2, &p);
        loose.qos_slack = 100.0;
        let rep = simulate(
            &[loose, tight],
            &FarmConfig {
                policy: Policy::Deadline,
                ..FarmConfig::default()
            },
        );
        assert_eq!(rep.served[0].job, 1, "tighter deadline is served first");
    }

    #[test]
    fn farm_trace_records_queue_events() {
        let p = uniform_profile(3, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::Fifo,
                trace: true,
                ..FarmConfig::default()
            },
        );
        let trace = rep.trace.expect("tracing was requested");
        assert_eq!(trace.ranks.len(), 1);
        let evs = &trace.ranks[0].events;
        assert!(evs
            .iter()
            .any(|e| e.cat == Category::Queue && e.name.starts_with("enqueue")));
        assert!(evs
            .iter()
            .any(|e| e.cat == Category::Queue && e.name.starts_with("wait")));
        assert!(evs.iter().any(|e| e.cat == Category::DiskRead));
        // Queue-depth counters are per-disk named tracks.
        assert!(evs
            .iter()
            .any(|e| e.name == "queue_depth:d0" && e.args.value == Some(2.0)));
        // Overlapping wait spans live on the nesting-exempt queue track,
        // so the farm trace passes the nesting check.
        assert!(evs
            .iter()
            .filter(|e| e.name.starts_with("wait"))
            .all(|e| e.track == Track::Queue));
        for rt in &trace.ranks {
            ooc_trace::check_well_nested(rt).expect("farm trace is well nested");
        }
        // The queue trace exports to Perfetto JSON without panicking.
        let json = ooc_trace::perfetto::to_chrome_json(&trace);
        ooc_trace::json::parse(&json).expect("valid JSON");
    }

    #[test]
    fn static_share_trace_is_well_nested_despite_overlapping_services() {
        let p = uniform_profile(4, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig {
                policy: Policy::StaticShare,
                trace: true,
                ..FarmConfig::default()
            },
        );
        let trace = rep.trace.expect("tracing was requested");
        // Static share serves both streams concurrently: the service
        // spans overlap, and only the exempt queue track makes that legal.
        assert!(trace.ranks[0]
            .events
            .iter()
            .filter(|e| e.name.starts_with("service"))
            .all(|e| e.track == Track::Queue));
        for rt in &trace.ranks {
            ooc_trace::check_well_nested(rt).expect("static-share trace is well nested");
        }
    }

    #[test]
    fn observe_collects_dispatch_events_without_perturbing_the_replay() {
        let p = uniform_profile(4, 0.0, 1.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let cfg = FarmConfig {
            policy: Policy::Fifo,
            trace: true,
            ..FarmConfig::default()
        };
        let plain = simulate(&jobs, &cfg);
        let mut sim = FarmSim::new(
            1,
            FarmConfig {
                observe: true,
                ..cfg
            },
        );
        for j in &jobs {
            sim.admit(j);
        }
        sim.run_to_end();
        let events = sim.drain_obs();
        let observed = sim.finish();
        assert_eq!(plain.served, observed.served, "observation is transparent");
        assert_eq!(plain.trace, observed.trace);
        assert_eq!(events.len(), plain.served.len());
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t, "drained events are time-ordered");
        }
        // Dispatch payloads mirror the served log.
        for (e, sv) in events.iter().zip(&observed.served) {
            assert_eq!(e.t.to_bits(), sv.start.to_bits());
            assert_eq!(e.job, sv.job);
            let ObsKind::Dispatched {
                disk,
                seq,
                wait,
                service,
                ..
            } = e.kind.clone()
            else {
                panic!("farm publishes only Dispatched, got {:?}", e.kind);
            };
            assert_eq!(disk, sv.disk);
            assert_eq!(seq, sv.seq);
            assert_eq!(wait.to_bits(), sv.wait().to_bits());
            assert_eq!(service.to_bits(), sv.service.to_bits());
        }
        // A second drain is empty.
        assert!(FarmSim::new(1, cfg).drain_obs().is_empty());
    }

    /// A profile with `ranks` identical streams of evenly spaced requests.
    fn wide_profile(ranks: usize, n: usize, gap: f64, service: f64) -> JobProfile {
        let one = uniform_profile(n, gap, service);
        JobProfile {
            rank_finish: vec![one.rank_finish[0]; ranks],
            streams: vec![one.streams[0].clone(); ranks],
            ..JobProfile::default()
        }
    }

    #[test]
    fn horizon_chunked_replay_is_bitwise_identical_to_batch() {
        let p = uniform_profile(8, 0.25, 1.0);
        let q = uniform_profile(6, 0.0, 1.5);
        let jobs = [
            FarmJob::new(1, &p),
            FarmJob {
                base: 0.7,
                ..FarmJob::new(2, &q)
            },
        ];
        for policy in [
            Policy::Fifo,
            Policy::Elevator,
            Policy::Deadline,
            Policy::FairShare,
        ] {
            let cfg = FarmConfig {
                policy,
                ..FarmConfig::default()
            };
            let batch = simulate(&jobs, &cfg);
            let mut sim = FarmSim::new(1, cfg);
            for j in &jobs {
                sim.admit(j);
            }
            // Advance in awkward fractional steps, then drain.
            let mut h = 0.3;
            while h < 25.0 {
                sim.run_until(h);
                h += 0.7;
            }
            sim.run_to_end();
            let chunked = sim.finish();
            assert_eq!(batch.served.len(), chunked.served.len());
            for (a, b) in batch.served.iter().zip(&chunked.served) {
                assert_eq!(a.job, b.job, "{policy:?}");
                assert_eq!(a.seq, b.seq, "{policy:?}");
                assert_eq!(a.start.to_bits(), b.start.to_bits(), "{policy:?}");
                assert_eq!(a.finish.to_bits(), b.finish.to_bits(), "{policy:?}");
            }
            for (a, b) in batch.jobs.iter().zip(&chunked.jobs) {
                assert_eq!(a.completion.to_bits(), b.completion.to_bits(), "{policy:?}");
                assert_eq!(a.total_wait.to_bits(), b.total_wait.to_bits(), "{policy:?}");
            }
        }
    }

    #[test]
    fn late_admission_uses_an_idle_disk_gap() {
        // A lone early job drains by t=2; a job admitted later must start
        // at its own base, not at some stale committed clock.
        let early = uniform_profile(2, 0.0, 1.0);
        let late = uniform_profile(2, 0.0, 1.0);
        let cfg = FarmConfig {
            policy: Policy::Fifo,
            ..FarmConfig::default()
        };
        let mut sim = FarmSim::new(1, cfg);
        sim.admit(&FarmJob::new(1, &early));
        // Stop exactly at the horizon where the early job has fully drained.
        sim.run_until(10.0);
        let slot = sim.admit(&FarmJob {
            base: 20.0,
            ..FarmJob::new(2, &late)
        });
        sim.run_to_end();
        assert!(sim.job_done(slot));
        let c = sim.completion(slot).unwrap();
        assert_eq!(
            c.to_bits(),
            (20.0 + late.makespan()).to_bits(),
            "late job replays solo on the idle disk"
        );
    }

    #[test]
    fn killed_disk_migrates_streams_and_jobs_still_finish() {
        let p = wide_profile(2, 6, 0.5, 1.0);
        let cfg = FarmConfig {
            policy: Policy::Fifo,
            ..FarmConfig::default()
        };
        let mut sim = FarmSim::new(2, cfg);
        let slot = sim.admit(&FarmJob::new(1, &p));
        sim.run_until(2.0);
        sim.kill_disk(1);
        assert_eq!(sim.alive_disks(), 1);
        sim.run_to_end();
        assert!(sim.job_done(slot), "job survives the disk death");
        let rep = sim.finish();
        // Disk 1 served nothing after its death at t=2 (an in-flight
        // request may finish at exactly 2.0 + service).
        for sv in rep.served.iter().filter(|s| s.disk == 1) {
            assert!(sv.start < 2.0 + 1.0);
        }
        // Every request was served exactly once.
        assert_eq!(rep.served.len(), 12);
        assert!(rep.jobs[0].completion >= p.makespan());
    }

    #[test]
    fn resumed_job_replays_only_the_suffix() {
        let p = uniform_profile(10, 0.25, 1.0);
        let cfg = FarmConfig {
            policy: Policy::Fifo,
            ..FarmConfig::default()
        };
        let mut sim = FarmSim::new(1, cfg);
        let slot = sim.admit_resumed(
            &FarmJob {
                base: 5.0,
                ..FarmJob::new(3, &p)
            },
            &[4],
        );
        sim.run_to_end();
        assert!(sim.job_done(slot));
        let rep = sim.finish();
        assert_eq!(rep.served.len(), 6, "the first 4 requests are skipped");
        assert_eq!(rep.served[0].seq, 4);
        // The watermark request is re-anchored to start at the new base.
        assert_eq!(rep.served[0].start.to_bits(), 5.0f64.to_bits());
        // Suffix solo gaps are preserved: completion = base + remaining tail.
        let origin = p.streams[0][4].t0;
        assert_eq!(
            rep.jobs[0].completion.to_bits(),
            (5.0 + (p.rank_finish[0] - origin)).to_bits()
        );
    }

    #[test]
    fn hung_stream_stalls_the_job_without_blocking_others() {
        let p = uniform_profile(6, 0.0, 1.0);
        let q = uniform_profile(6, 0.0, 1.0);
        let cfg = FarmConfig {
            policy: Policy::Fifo,
            ..FarmConfig::default()
        };
        let mut sim = FarmSim::new(1, cfg);
        let hung = sim.admit(&FarmJob::new(1, &p));
        let fine = sim.admit(&FarmJob::new(2, &q));
        // Requests at/past solo time 3.0 (seq >= 3) never arrive.
        sim.hang(hung, 0, 3.0);
        sim.run_to_end();
        assert!(!sim.job_done(hung));
        assert!(sim.stalled(hung), "all remaining requests are hung");
        assert_eq!(sim.progress(hung), 3);
        assert!(sim.job_done(fine), "the healthy job drains past the hang");
        assert!(!sim.stalled(fine));
        // Killing the hung job releases its slot; cursors reflect progress.
        let cursors = sim.remove_job(hung);
        assert_eq!(cursors, vec![3]);
        assert!(!sim.job_done(hung));
    }
}
