//! Disk scheduling policies.
//!
//! Each physical disk of the farm owns a request queue; a [`Policy`] decides
//! which armed request the disk serves next. Every policy is a pure,
//! deterministic function of the queue state — ties always break on the
//! `(arrival, job)` key — so farm replays are bit-reproducible.

/// How a disk orders the requests competing for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// The legacy static divide: no queueing at all. Every request is
    /// served at its arrival time, exactly as the pre-farm cost model
    /// priced it (the `shared_disks` / aggregate-bandwidth parameters
    /// already spread the bandwidth statically). This is the default and
    /// the byte-identical fallback for single-job runs.
    #[default]
    StaticShare,
    /// First-come first-served on arrival time.
    Fifo,
    /// Offset-coalescing elevator (C-SCAN): among armed requests, serve
    /// the one at or beyond the head position with the smallest offset,
    /// wrapping to the smallest offset when none lies ahead. Requests
    /// without recorded offsets (profiles captured without
    /// `TraceConfig::detailed()`) sort as offset 0.
    Elevator,
    /// Earliest deadline first: each job's requests carry the deadline
    /// `arrival + qos_slack`; the disk serves the most urgent.
    Deadline,
    /// Weighted fair share: serve the job with the least attained service
    /// normalized by its weight (start-time fair queueing over the farm's
    /// service time).
    FairShare,
}

impl Policy {
    /// All policies, in display order.
    pub const ALL: [Policy; 5] = [
        Policy::StaticShare,
        Policy::Fifo,
        Policy::Elevator,
        Policy::Deadline,
        Policy::FairShare,
    ];

    /// Stable lowercase label used in reports and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::StaticShare => "static-share",
            Policy::Fifo => "fifo",
            Policy::Elevator => "elevator",
            Policy::Deadline => "deadline",
            Policy::FairShare => "fair-share",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_legacy_static_divide() {
        assert_eq!(Policy::default(), Policy::StaticShare);
    }

    #[test]
    fn labels_are_unique() {
        let mut names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Policy::ALL.len());
    }
}
