//! `oocd` — the persistent multi-tenant I/O service.
//!
//! The paper's compiler-directed out-of-core runtime presumes an I/O
//! system that *owns* the disks and serves many programs at once (ViPIOS
//! is the production analogue). This module is that daemon: it holds the
//! disk farm, accepts job submissions from many clients over a
//! Unix-domain or TCP socket, maps the accumulated session onto
//! [`run_workload_guarded_observed`] with the existing admission control
//! and per-tenant QoS policies, and streams the observatory's events and
//! the Prometheus scorecard back to subscribed clients.
//!
//! ## Wire protocol
//!
//! Frames are length-prefixed: a 4-byte little-endian `u32` payload
//! length, then that many bytes of UTF-8 JSON. Requests are objects with
//! an `"op"` field; responses are `{"ok":true,...}` or
//! `{"ok":false,"error":{"kind":K,"detail":D}}`. Verbs:
//!
//! | op          | effect |
//! |-------------|--------|
//! | `submit`    | validate and queue one job (`job` carries the spec)   |
//! | `status`    | phase, job / tenant counts                            |
//! | `subscribe` | turn this connection into an event stream             |
//! | `drain`     | seal the timeline, run the workload, report a summary |
//! | `scorecard` | the SLO scorecard + Prometheus exposition (post-drain)|
//! | `shutdown`  | stop accepting connections and exit the accept loop   |
//!
//! Hardening: per-connection read timeouts, a bounded frame size, and
//! typed [`ProtoError`]s. A malformed *frame* (oversized, truncated) has
//! destroyed the framing, so the daemon reports the error and closes that
//! connection; a malformed *request* in a well-formed frame (bad JSON,
//! unknown op, inadmissible job) is answered with a typed error and the
//! connection keeps serving. A client disconnecting mid-stream is simply
//! dropped from the fan-out.
//!
//! ## Session lifecycle and determinism
//!
//! The daemon is a *virtual-time* service: submissions carry virtual
//! submit times, and nothing executes until `drain` seals the timeline.
//! Drain sorts the accepted specs by `(submit, name)` — a total order,
//! since names are unique — so the wall-clock interleaving of the
//! submitting sockets cannot influence the run. Two daemons fed the same
//! logical submissions therefore produce byte-identical scorecards,
//! expositions and event streams regardless of socket timing; `oocload`
//! and the `daemon-smoke` CI job `cmp` exactly that. After the drain the
//! daemon stays up read-only (`status`, `scorecard`, late `subscribe`
//! replays) until `shutdown`.

use std::collections::BTreeSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ooc_trace::json::{self, Json};

use crate::capture::{IoReq, JobProfile};
use crate::domain::{run_workload_guarded_observed, DomainConfig, GuardedReport, JobOutcome};
use crate::obs::{render_event, render_sample, EventLog, ObsEvent, Sample, WorkloadObserver};
use crate::workload::{validate_specs, JobSpec};
use crate::SloScorecard;

/// Default ceiling on a single frame's payload, bytes.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Daemon configuration: the guarded runtime the session maps onto, plus
/// the protocol guards.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The guarded-runtime configuration every drained session runs under
    /// (policy, QoS, watchdog, retries, chaos seed…).
    pub domain: DomainConfig,
    /// Observatory sampling cadence, virtual seconds (positive).
    pub sample_every: f64,
    /// Per-connection read timeout: a client that stays silent mid-frame
    /// for this long is disconnected. `None` disables the guard.
    pub read_timeout: Option<Duration>,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            domain: DomainConfig::default(),
            sample_every: 5.0,
            read_timeout: Some(Duration::from_secs(5)),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Typed protocol error. Frame-level variants ([`ProtoError::FrameTooLarge`],
/// [`ProtoError::Truncated`], [`ProtoError::Io`]) mean the framing is lost
/// and the connection closes after reporting; request-level variants keep
/// the connection serving.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The length prefix announces a payload beyond the configured bound.
    FrameTooLarge { len: u32, max: u32 },
    /// The stream ended inside a length prefix or payload.
    Truncated { context: &'static str },
    /// The payload is not valid JSON (or not UTF-8).
    BadJson { detail: String },
    /// Well-formed JSON that is not a valid request.
    BadRequest { detail: String },
    /// The server refused the request (admission error, wrong phase…).
    /// `kind` is the machine-readable tag from the error response.
    Refused { kind: String, detail: String },
    /// Transport failure (timeout, reset).
    Io { detail: String },
}

impl ProtoError {
    /// Stable machine-readable tag, mirrored in error responses.
    pub fn kind(&self) -> &str {
        match self {
            ProtoError::FrameTooLarge { .. } => "frame_too_large",
            ProtoError::Truncated { .. } => "truncated",
            ProtoError::BadJson { .. } => "bad_json",
            ProtoError::BadRequest { .. } => "bad_request",
            ProtoError::Refused { kind, .. } => kind,
            ProtoError::Io { .. } => "io",
        }
    }

    /// Whether the connection's framing survived this error (the daemon
    /// keeps serving the connection when true).
    pub fn recoverable(&self) -> bool {
        matches!(
            self,
            ProtoError::BadJson { .. } | ProtoError::BadRequest { .. } | ProtoError::Refused { .. }
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            ProtoError::Truncated { context } => {
                write!(f, "stream truncated inside a {context}")
            }
            ProtoError::BadJson { detail } => write!(f, "malformed JSON payload: {detail}"),
            ProtoError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ProtoError::Refused { kind, detail } => write!(f, "refused ({kind}): {detail}"),
            ProtoError::Io { detail } => write!(f, "transport error: {detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn io_err(e: io::Error) -> ProtoError {
    ProtoError::Io {
        detail: e.to_string(),
    }
}

/// Read one length-prefixed frame. `Ok(None)` is a clean disconnect at a
/// frame boundary; EOF anywhere else is [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<String>, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(io_err(e)),
    }
    r.read_exact(&mut len_buf[1..])
        .map_err(|_| ProtoError::Truncated {
            context: "length prefix",
        })?;
    let len = u32::from_le_bytes(len_buf);
    if len > max {
        return Err(ProtoError::FrameTooLarge { len, max });
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|_| ProtoError::Truncated { context: "payload" })?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ProtoError::BadJson {
            detail: "payload is not UTF-8".to_string(),
        })
}

/// Write one length-prefixed frame. Prefix and payload go out in a single
/// `write_all` — two small writes per frame would trip Nagle + delayed-ACK
/// on TCP and cost ~40ms per request.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn error_json(kind: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
        json_escape(kind),
        json_escape(detail)
    )
}

/// FNV-1a 64-bit digest of the rendered event stream — the one-line
/// divergence detector carried by summaries and the subscriber end frame.
fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Connections: one type over Unix-domain and TCP sockets.

/// A daemon- or client-side socket connection.
#[derive(Debug)]
pub enum Conn {
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream (loopback in every shipped use).
    Tcp(TcpStream),
}

impl Conn {
    fn tcp(s: TcpStream) -> Conn {
        // Frames are written whole, but disable Nagle anyway so streamed
        // subscriber frames are never held back for an ACK.
        let _ = s.set_nodelay(true);
        Conn::Tcp(s)
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    fn shutdown(&self) {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Conn::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// The daemon's listening socket.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain socket; the path is unlinked when the daemon exits.
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
    /// TCP socket.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind a Unix-domain listener, replacing a stale socket file.
    #[cfg(unix)]
    pub fn bind_unix(path: impl Into<std::path::PathBuf>) -> io::Result<Listener> {
        let path = path.into();
        let _ = std::fs::remove_file(&path);
        Ok(Listener::Unix(UnixListener::bind(&path)?, path))
    }

    /// Bind a TCP listener (use `127.0.0.1:0` for an ephemeral port).
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    /// Human-readable bound address (the socket path, or `host:port`).
    pub fn addr(&self) -> String {
        match self {
            #[cfg(unix)]
            Listener::Unix(_, p) => p.display().to_string(),
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unbound>".to_string()),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::tcp(s)),
        }
    }

    /// Open a throwaway client connection to this listener — the shutdown
    /// path uses it to wake the blocking accept loop.
    fn wake(&self) {
        match self {
            #[cfg(unix)]
            Listener::Unix(_, p) => {
                let _ = UnixStream::connect(p);
            }
            Listener::Tcp(l) => {
                if let Ok(a) = l.local_addr() {
                    let _ = TcpStream::connect(a);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon state.

/// Where the session sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Admissions open.
    Accepting,
    /// A drain is executing; admissions refused.
    Draining,
    /// The run finished; the daemon serves results read-only.
    Drained,
}

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Accepting => "accepting",
            Phase::Draining => "draining",
            Phase::Drained => "drained",
        }
    }
}

/// The drained session's deterministic artifacts.
struct DrainResult {
    summary: String,
    scorecard: String,
    prom: String,
    stream_fnv: u64,
    events: usize,
    samples: usize,
}

struct State {
    phase: Phase,
    specs: Vec<JobSpec>,
    names: BTreeSet<String>,
    tenants: BTreeSet<String>,
    result: Option<DrainResult>,
}

/// Subscriber fan-out: every rendered line ever published (for late
/// subscribers to replay) plus the live senders. Dead subscribers are
/// dropped on send failure — a client disconnecting mid-stream never
/// stalls the run.
#[derive(Default)]
struct Hub {
    sent: Vec<String>,
    subs: Vec<mpsc::Sender<String>>,
    done: bool,
}

impl Hub {
    fn publish(&mut self, line: String) {
        self.subs.retain(|s| s.send(line.clone()).is_ok());
        self.sent.push(line);
    }
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    hub: Mutex<Hub>,
    stop: AtomicBool,
    /// The daemon's own listener — the shutdown path self-connects through
    /// it to wake the blocking accept loop.
    listener: Listener,
}

impl Inner {
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Dropping the senders releases any live subscriber streams.
        self.hub.lock().unwrap().subs.clear();
        self.listener.wake();
    }
}

/// Handle on a running daemon: the bound address plus the accept-loop
/// thread. Dropping the handle does not stop the daemon; send a
/// `shutdown` request (or call [`DaemonHandle::shutdown`]) and then
/// [`DaemonHandle::join`].
pub struct DaemonHandle {
    /// Bound address: the socket path, or `host:port`.
    pub addr: String,
    inner: Arc<Inner>,
    accept_loop: JoinHandle<()>,
}

impl DaemonHandle {
    /// Ask the daemon to stop accepting connections and exit.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Wait for the accept loop (and every connection it spawned).
    pub fn join(self) -> std::thread::Result<()> {
        self.accept_loop.join()
    }
}

/// Start the daemon on `listener`. Returns immediately; the accept loop
/// runs on its own thread until a `shutdown` request arrives.
pub fn serve(listener: Listener, cfg: ServeConfig) -> DaemonHandle {
    assert!(
        cfg.sample_every > 0.0 && cfg.sample_every.is_finite(),
        "the observatory cadence must be positive"
    );
    let addr = listener.addr();
    let inner = Arc::new(Inner {
        cfg,
        state: Mutex::new(State {
            phase: Phase::Accepting,
            specs: Vec::new(),
            names: BTreeSet::new(),
            tenants: BTreeSet::new(),
            result: None,
        }),
        hub: Mutex::new(Hub::default()),
        stop: AtomicBool::new(false),
        listener,
    });
    let accept_inner = Arc::clone(&inner);
    let accept_loop = std::thread::spawn(move || {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if accept_inner.stop.load(Ordering::SeqCst) {
                break;
            }
            let conn = match accept_inner.listener.accept() {
                Ok(c) => c,
                Err(_) => continue,
            };
            if accept_inner.stop.load(Ordering::SeqCst) {
                break;
            }
            let conn_inner = Arc::clone(&accept_inner);
            workers.push(std::thread::spawn(move || handle_conn(conn_inner, conn)));
        }
        for w in workers {
            let _ = w.join();
        }
        #[cfg(unix)]
        if let Listener::Unix(_, p) = &accept_inner.listener {
            let _ = std::fs::remove_file(p);
        }
    });
    DaemonHandle {
        addr,
        inner,
        accept_loop,
    }
}

/// What the connection loop does after one request.
enum Flow {
    Continue,
    Close,
    /// Switch into subscriber streaming (takes over the connection).
    Stream(mpsc::Receiver<String>),
}

fn handle_conn(inner: Arc<Inner>, mut conn: Conn) {
    let _ = conn.set_read_timeout(inner.cfg.read_timeout);
    loop {
        match read_frame(&mut conn, inner.cfg.max_frame) {
            Ok(None) => return,
            Ok(Some(text)) => match handle_request(&inner, &text) {
                Ok((response, flow)) => {
                    if write_frame(&mut conn, &response).is_err() {
                        return;
                    }
                    match flow {
                        Flow::Continue => {}
                        Flow::Close => {
                            conn.shutdown();
                            return;
                        }
                        Flow::Stream(rx) => {
                            stream_subscriber(&inner, conn, rx);
                            return;
                        }
                    }
                }
                Err(e) => {
                    let frame = error_json(e.kind(), &e.to_string());
                    if write_frame(&mut conn, &frame).is_err() || !e.recoverable() {
                        conn.shutdown();
                        return;
                    }
                }
            },
            Err(e) => {
                // Framing is gone (or the read timed out): report
                // best-effort and close.
                let _ = write_frame(&mut conn, &error_json(e.kind(), &e.to_string()));
                conn.shutdown();
                return;
            }
        }
    }
}

/// Stream the event fan-out to one subscriber until the run completes (or
/// the client goes away), then send the end frame.
fn stream_subscriber(inner: &Inner, mut conn: Conn, rx: mpsc::Receiver<String>) {
    // The subscriber only writes from here on; reads would hit the idle
    // timeout long before a large run finishes.
    let _ = conn.set_read_timeout(None);
    for line in rx {
        let frame = format!("{{\"line\":\"{}\"}}", json_escape(&line));
        if write_frame(&mut conn, &frame).is_err() {
            return; // client disconnected mid-stream; drop it
        }
    }
    // Senders are gone: the drain finished (or the daemon shut down).
    let st = inner.state.lock().unwrap();
    let end = match &st.result {
        Some(r) => format!(
            "{{\"end\":true,\"events\":{},\"samples\":{},\"stream_fnv\":\"{:016x}\"}}",
            r.events, r.samples, r.stream_fnv
        ),
        None => "{\"end\":true}".to_string(),
    };
    drop(st);
    let _ = write_frame(&mut conn, &end);
    conn.shutdown();
}

fn handle_request(inner: &Inner, text: &str) -> Result<(String, Flow), ProtoError> {
    let req = json::parse(text).map_err(|detail| ProtoError::BadJson { detail })?;
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::BadRequest {
            detail: "missing string field \"op\"".to_string(),
        })?;
    match op {
        "submit" => op_submit(inner, &req).map(|r| (r, Flow::Continue)),
        "status" => Ok((op_status(inner), Flow::Continue)),
        "subscribe" => {
            let rx = op_subscribe(inner);
            Ok((
                "{\"ok\":true,\"subscribed\":true}".to_string(),
                Flow::Stream(rx),
            ))
        }
        "drain" => op_drain(inner).map(|r| (r, Flow::Continue)),
        "scorecard" => op_scorecard(inner).map(|r| (r, Flow::Continue)),
        "shutdown" => {
            inner.begin_shutdown();
            Ok(("{\"ok\":true,\"stopping\":true}".to_string(), Flow::Close))
        }
        other => Err(ProtoError::BadRequest {
            detail: format!("unknown op {other:?}"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Request handlers.

fn num_field(j: &Json, key: &str) -> Result<f64, ProtoError> {
    j.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| ProtoError::BadRequest {
            detail: format!("missing numeric field {key:?}"),
        })
}

fn count_field(v: &Json, what: &str) -> Result<u64, ProtoError> {
    let n = v.as_num().ok_or_else(|| ProtoError::BadRequest {
        detail: format!("{what} must be a number"),
    })?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(ProtoError::BadRequest {
            detail: format!("{what} must be a non-negative integer, got {n}"),
        });
    }
    Ok(n as u64)
}

/// Decode the submitted job spec. Structural soundness of the decoded
/// profile is enforced by the same [`validate_specs`] gate the batch
/// runtimes use, so a truncated or corrupted replay profile comes back as
/// a typed admission error — never a panic.
fn parse_spec(job: &Json) -> Result<JobSpec, ProtoError> {
    let name = job
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::BadRequest {
            detail: "job needs a string \"name\"".to_string(),
        })?;
    let profile = job.get("profile").ok_or_else(|| ProtoError::BadRequest {
        detail: "job needs a \"profile\"".to_string(),
    })?;
    let rank_finish: Vec<f64> = profile
        .get("rank_finish")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::BadRequest {
            detail: "profile needs an array \"rank_finish\"".to_string(),
        })?
        .iter()
        .map(|v| {
            v.as_num().ok_or_else(|| ProtoError::BadRequest {
                detail: "rank_finish entries must be numbers".to_string(),
            })
        })
        .collect::<Result<_, _>>()?;
    let streams_json = profile
        .get("streams")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::BadRequest {
            detail: "profile needs an array \"streams\"".to_string(),
        })?;
    let mut streams = Vec::with_capacity(streams_json.len());
    for (rank, s) in streams_json.iter().enumerate() {
        let reqs_json = s.as_arr().ok_or_else(|| ProtoError::BadRequest {
            detail: format!("stream {rank} must be an array"),
        })?;
        let mut reqs = Vec::with_capacity(reqs_json.len());
        for (i, r) in reqs_json.iter().enumerate() {
            // Compact form: [t0, t1, requests, bytes, offset|null, write].
            let f = r
                .as_arr()
                .filter(|f| f.len() == 6)
                .ok_or_else(|| ProtoError::BadRequest {
                    detail: format!(
                        "stream {rank} request {i} must be [t0, t1, requests, bytes, offset, write]"
                    ),
                })?;
            let fnum = |k: usize, what: &str| {
                f[k].as_num().ok_or_else(|| ProtoError::BadRequest {
                    detail: format!("stream {rank} request {i}: {what} must be a number"),
                })
            };
            let offset = match &f[4] {
                Json::Null => None,
                v => Some(count_field(v, "offset")?),
            };
            let write = match &f[5] {
                Json::Bool(b) => *b,
                _ => {
                    return Err(ProtoError::BadRequest {
                        detail: format!("stream {rank} request {i}: write must be a bool"),
                    })
                }
            };
            reqs.push(IoReq {
                t0: fnum(0, "t0")?,
                t1: fnum(1, "t1")?,
                requests: count_field(&f[2], "requests")?,
                bytes: count_field(&f[3], "bytes")?,
                offset,
                write,
            });
        }
        streams.push(reqs);
    }
    let profile = JobProfile {
        rank_finish,
        streams,
        ..JobProfile::default()
    };
    let mut spec = JobSpec::new(name, profile);
    spec.submit = num_field(job, "submit")?;
    if let Some(w) = job.get("weight").and_then(Json::as_num) {
        spec.weight = w;
    }
    if let Some(q) = job.get("qos_slack").and_then(Json::as_num) {
        spec.qos_slack = q;
    }
    Ok(spec)
}

fn op_submit(inner: &Inner, req: &Json) -> Result<String, ProtoError> {
    let job = req.get("job").ok_or_else(|| ProtoError::BadRequest {
        detail: "submit needs a \"job\" object".to_string(),
    })?;
    let spec = parse_spec(job)?;
    let tenant = job
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("anonymous")
        .to_string();
    let mut st = inner.state.lock().unwrap();
    if st.phase != Phase::Accepting {
        return Err(ProtoError::Refused {
            kind: "draining".to_string(),
            detail: format!(
                "the session is {} — new admissions are refused",
                st.phase.label()
            ),
        });
    }
    if st.names.contains(&spec.name) {
        return Err(ProtoError::Refused {
            kind: "admission".to_string(),
            detail: format!("job id {:?} submitted more than once", spec.name),
        });
    }
    // The same typed gate the batch runtimes use: NoRanks, capacity,
    // finite submit, structurally sound profile.
    if let Err(e) = validate_specs(std::slice::from_ref(&spec), inner.cfg.domain.disks) {
        return Err(ProtoError::Refused {
            kind: "admission".to_string(),
            detail: e.to_string(),
        });
    }
    st.names.insert(spec.name.clone());
    st.tenants.insert(tenant);
    st.specs.push(spec);
    Ok(format!("{{\"ok\":true,\"jobs\":{}}}", st.specs.len()))
}

fn op_status(inner: &Inner) -> String {
    let st = inner.state.lock().unwrap();
    format!(
        "{{\"ok\":true,\"phase\":\"{}\",\"jobs\":{},\"tenants\":{}}}",
        st.phase.label(),
        st.specs.len(),
        st.tenants.len()
    )
}

fn op_subscribe(inner: &Inner) -> mpsc::Receiver<String> {
    let (tx, rx) = mpsc::channel();
    let mut hub = inner.hub.lock().unwrap();
    // Late subscriber: replay everything already published, then go live
    // (or, post-drain, straight to the end frame — the sender drops here).
    for line in &hub.sent {
        let _ = tx.send(line.clone());
    }
    if !hub.done {
        hub.subs.push(tx);
    }
    rx
}

/// The observatory observer that feeds the subscriber fan-out while
/// retaining the full log for the artifacts.
struct Broadcast<'a> {
    hub: &'a Mutex<Hub>,
    log: EventLog,
}

impl WorkloadObserver for Broadcast<'_> {
    fn event(&mut self, e: &ObsEvent) {
        self.hub.lock().unwrap().publish(render_event(e));
        self.log.events.push(e.clone());
    }

    fn sample(&mut self, s: &Sample) {
        self.hub.lock().unwrap().publish(render_sample(s));
        self.log.samples.push(s.clone());
    }
}

fn op_drain(inner: &Inner) -> Result<String, ProtoError> {
    // Seal the timeline: flip to Draining under the lock, run outside it
    // so status/subscribe stay responsive during the run.
    let mut specs = {
        let mut st = inner.state.lock().unwrap();
        if st.phase != Phase::Accepting {
            return Err(ProtoError::Refused {
                kind: "draining".to_string(),
                detail: format!("the session is already {}", st.phase.label()),
            });
        }
        st.phase = Phase::Draining;
        std::mem::take(&mut st.specs)
    };
    // Deterministic execution order regardless of socket interleaving:
    // names are unique, so (submit, name) is a total order.
    specs.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.name.cmp(&b.name)));
    let mut obs = Broadcast {
        hub: &inner.hub,
        log: EventLog::default(),
    };
    let run =
        run_workload_guarded_observed(&specs, &inner.cfg.domain, inner.cfg.sample_every, &mut obs);
    let report = match run {
        Ok(r) => r,
        Err(e) => {
            // Per-submit validation makes this unreachable; fail closed
            // anyway rather than poisoning the daemon.
            let mut st = inner.state.lock().unwrap();
            st.phase = Phase::Drained;
            return Err(ProtoError::Refused {
                kind: "admission".to_string(),
                detail: e.to_string(),
            });
        }
    };
    let rendered = obs.log.render();
    let stream_fnv = fnv64(&rendered);
    let card = SloScorecard::from_guarded(&report);
    let prom = ooc_trace::prom::render(&SloScorecard::prom(std::slice::from_ref(&card)));
    let result = DrainResult {
        summary: drain_summary(&report, &card, stream_fnv),
        scorecard: scorecard_json(&card, stream_fnv),
        prom,
        stream_fnv,
        events: obs.log.events.len(),
        samples: obs.log.samples.len(),
    };
    let summary = result.summary.clone();
    {
        let mut st = inner.state.lock().unwrap();
        st.result = Some(result);
        st.phase = Phase::Drained;
    }
    // Release the live subscribers: dropping the senders ends their
    // streams, and each then reads the end frame from the stored result.
    let mut hub = inner.hub.lock().unwrap();
    hub.done = true;
    hub.subs.clear();
    Ok(summary)
}

fn opt_num(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| format!("{v:.9}"))
}

fn drain_summary(report: &GuardedReport, card: &SloScorecard, stream_fnv: u64) -> String {
    let outcomes =
        |f: fn(&JobOutcome) -> bool| report.jobs.iter().filter(|j| f(&j.outcome)).count();
    format!(
        "{{\"ok\":true,\"jobs\":{},\"completed\":{},\"recovered\":{},\"killed\":{},\
         \"quarantined\":{},\"makespan\":{:.9},\"deadline_hit_rate\":{:.9},\
         \"stream_fnv\":\"{stream_fnv:016x}\"}}",
        report.jobs.len(),
        report.completed(),
        outcomes(|o| matches!(o, JobOutcome::Recovered { .. })),
        outcomes(|o| matches!(o, JobOutcome::Killed { .. })),
        outcomes(|o| matches!(o, JobOutcome::Quarantined { .. })),
        report.makespan(),
        card.deadline_hit_rate(),
    )
}

fn scorecard_json(card: &SloScorecard, stream_fnv: u64) -> String {
    format!(
        "{{\"policy\":\"{}\",\"jobs\":{},\"completed\":{},\"recovered\":{},\"killed\":{},\
         \"quarantined\":{},\"deadline_hits\":{},\"deadline_hit_rate\":{:.9},\
         \"p50_turnaround\":{},\"p95_turnaround\":{},\"p99_turnaround\":{},\
         \"mean_slowdown\":{:.9},\"makespan\":{:.9},\"stream_fnv\":\"{stream_fnv:016x}\"}}",
        card.policy,
        card.jobs,
        card.completed,
        card.recovered,
        card.killed,
        card.quarantined,
        card.deadline_hits,
        card.deadline_hit_rate(),
        opt_num(card.p50_turnaround),
        opt_num(card.p95_turnaround),
        opt_num(card.p99_turnaround),
        card.mean_slowdown,
        card.makespan,
    )
}

fn op_scorecard(inner: &Inner) -> Result<String, ProtoError> {
    let st = inner.state.lock().unwrap();
    match &st.result {
        Some(r) => Ok(format!(
            "{{\"ok\":true,\"scorecard\":{},\"prom\":\"{}\"}}",
            r.scorecard,
            json_escape(&r.prom)
        )),
        None => Err(ProtoError::Refused {
            kind: "not_ready".to_string(),
            detail: format!("no drained run yet (phase: {})", st.phase.label()),
        }),
    }
}

// ---------------------------------------------------------------------------
// Client.

/// Blocking protocol client used by `oocload`, the tests and ad-hoc
/// tooling.
pub struct Client {
    conn: Conn,
    max_frame: u32,
}

impl Client {
    /// Connect to a Unix-domain daemon socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &str) -> io::Result<Client> {
        Ok(Client {
            conn: Conn::Unix(UnixStream::connect(path)?),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connect to a TCP daemon address.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        Ok(Client {
            conn: Conn::tcp(TcpStream::connect(addr)?),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Connect to `addr`: a `host:port` pair, or (on Unix) a socket path.
    pub fn connect(addr: &str) -> io::Result<Client> {
        #[cfg(unix)]
        if !addr.contains(':') {
            return Client::connect_unix(addr);
        }
        Client::connect_tcp(addr)
    }

    /// Send one request and return the raw response frame text — the
    /// deterministic artifact surface `oocload` byte-compares. Error
    /// responses still come back as frames here; use [`Client::request`]
    /// for typed errors.
    pub fn request_raw(&mut self, body: &str) -> Result<String, ProtoError> {
        write_frame(&mut self.conn, body).map_err(io_err)?;
        read_frame(&mut self.conn, self.max_frame)?.ok_or(ProtoError::Truncated {
            context: "response",
        })
    }

    /// Send one request and decode the response. Error responses come
    /// back as [`ProtoError::Refused`] / [`ProtoError::BadRequest`] /
    /// [`ProtoError::BadJson`] keyed by the server's error kind.
    pub fn request(&mut self, body: &str) -> Result<Json, ProtoError> {
        let raw = self.request_raw(body)?;
        let frame = json::parse(&raw).map_err(|detail| ProtoError::BadJson { detail })?;
        if let Some(err) = frame.get("error") {
            let kind = err
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string();
            let detail = err
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            return Err(match kind.as_str() {
                "bad_json" => ProtoError::BadJson { detail },
                "bad_request" => ProtoError::BadRequest { detail },
                _ => ProtoError::Refused { kind, detail },
            });
        }
        Ok(frame)
    }

    /// Read the next frame (for subscriber streams). `Ok(None)` when the
    /// server closed the stream.
    pub fn next_frame(&mut self) -> Result<Option<Json>, ProtoError> {
        match read_frame(&mut self.conn, self.max_frame)? {
            Some(text) => json::parse(&text)
                .map(Some)
                .map_err(|detail| ProtoError::BadJson { detail }),
            None => Ok(None),
        }
    }

    /// Write raw bytes on the socket — the malformed-frame corpus uses
    /// this to attack the decoder.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.conn.write_all(bytes)?;
        self.conn.flush()
    }

    /// Clone the underlying connection (e.g. one half subscribing while
    /// the other submits is *not* supported — frames would interleave —
    /// but a reader clone lets tests poke at half-closed behavior).
    pub fn try_clone(&self) -> io::Result<Client> {
        Ok(Client {
            conn: self.conn.try_clone()?,
            max_frame: self.max_frame,
        })
    }
}

/// Encode a [`JobSpec`]-shaped submission request. The inverse of
/// [`parse_spec`]; `oocload` and the tests build their traffic with it.
pub fn submit_json(tenant: &str, spec: &JobSpec) -> String {
    let mut out = format!(
        "{{\"op\":\"submit\",\"job\":{{\"tenant\":\"{}\",\"name\":\"{}\",\
         \"submit\":{:.9},\"weight\":{:.9},\"qos_slack\":{:.9},\"profile\":{{\"rank_finish\":[",
        json_escape(tenant),
        json_escape(&spec.name),
        spec.submit,
        spec.weight,
        spec.qos_slack,
    );
    for (i, f) in spec.profile.rank_finish.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{f:.9}"));
    }
    out.push_str("],\"streams\":[");
    for (i, stream) in spec.profile.streams.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, r) in stream.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let offset = r
                .offset
                .map_or_else(|| "null".to_string(), |o| o.to_string());
            out.push_str(&format!(
                "[{:.9},{:.9},{},{},{},{}]",
                r.t0, r.t1, r.requests, r.bytes, offset, r.write
            ));
        }
        out.push(']');
    }
    out.push_str("]}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_enforce_the_bound() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"status\"}").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some("{\"op\":\"status\"}")
        );
        // Clean EOF at a frame boundary.
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), None);
        // Oversized announcement.
        let mut big = Vec::new();
        big.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &big[..], 1024),
            Err(ProtoError::FrameTooLarge { max: 1024, .. })
        ));
        // Truncated prefix and truncated payload.
        assert!(matches!(
            read_frame(&mut &[0x05u8, 0x00][..], 1024),
            Err(ProtoError::Truncated {
                context: "length prefix"
            })
        ));
        let mut short = Vec::new();
        short.extend_from_slice(&8u32.to_le_bytes());
        short.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut &short[..], 1024),
            Err(ProtoError::Truncated { context: "payload" })
        ));
        // Non-UTF-8 payload.
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut &bad[..], 1024),
            Err(ProtoError::BadJson { .. })
        ));
    }

    #[test]
    fn submit_json_round_trips_through_parse_spec() {
        let spec = JobSpec::new(
            "t0-j0",
            JobProfile {
                rank_finish: vec![2.0, 3.5],
                streams: vec![
                    vec![IoReq {
                        t0: 0.0,
                        t1: 1.0,
                        requests: 2,
                        bytes: 4096,
                        offset: Some(128),
                        write: false,
                    }],
                    vec![IoReq {
                        t0: 0.5,
                        t1: 2.0,
                        requests: 1,
                        bytes: 64,
                        offset: None,
                        write: true,
                    }],
                ],
                ..JobProfile::default()
            },
        )
        .with_submit(7.25)
        .with_weight(2.0);
        let body = submit_json("tenant-a", &spec);
        let req = json::parse(&body).unwrap();
        let decoded = parse_spec(req.get("job").unwrap()).unwrap();
        assert_eq!(decoded.name, spec.name);
        assert_eq!(decoded.submit.to_bits(), spec.submit.to_bits());
        assert_eq!(decoded.weight.to_bits(), spec.weight.to_bits());
        assert_eq!(decoded.profile, spec.profile);
    }

    #[test]
    fn parse_spec_refuses_malformed_submissions_with_typed_errors() {
        let cases = [
            ("{}", "name"),
            ("{\"name\":\"x\"}", "profile"),
            ("{\"name\":\"x\",\"profile\":{}}", "rank_finish"),
            (
                "{\"name\":\"x\",\"profile\":{\"rank_finish\":[1.0],\"streams\":[[[0,1,1]]]},\
                 \"submit\":0}",
                "request",
            ),
            (
                "{\"name\":\"x\",\"profile\":{\"rank_finish\":[1.0],\
                 \"streams\":[[[0,1,-3,64,null,false]]]},\"submit\":0}",
                "non-negative",
            ),
        ];
        for (body, needle) in cases {
            let job = json::parse(body).unwrap();
            let err = parse_spec(&job).unwrap_err();
            assert!(
                matches!(err, ProtoError::BadRequest { .. }),
                "{body}: {err:?}"
            );
            assert!(
                err.to_string().contains(needle),
                "{body}: {err} missing {needle:?}"
            );
        }
    }

    #[test]
    fn json_escape_handles_quotes_newlines_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        let round = json::parse(&format!("\"{}\"", json_escape("x\ty\r\nz\"")));
        assert_eq!(round.unwrap().as_str(), Some("x\ty\r\nz\""));
    }
}
