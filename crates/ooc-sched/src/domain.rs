//! Workload-level fault domains: the guarded runtime.
//!
//! The plain workload runtime ([`crate::run_workload`]) assumes every job
//! runs to completion. Real multi-tenant I/O servers cannot: jobs hang,
//! deadlines blow, disks die under everyone at once. This module wraps the
//! resumable farm ([`crate::FarmSim`]) in a control-plane *executive* that
//! sweeps the workload on the simulated clock and keeps each failure inside
//! its own fault domain:
//!
//! - a **watchdog** kills a job that makes no virtual-time progress within
//!   its quantum (the configured quantum plus the job's own largest solo
//!   inter-request gap, so compute-heavy jobs are not misdiagnosed);
//! - **deadlines** bound each job's turnaround; a miss kills the attempt;
//! - killed jobs are **resubmitted** with exponential backoff charged to
//!   the workload clock, resuming from their last checkpoint watermark,
//!   until a bounded re-run budget is exhausted and the job is
//!   **quarantined** — a typed outcome, not a panic;
//! - under overload, EDF **preempts** the latest-deadline running job at a
//!   checkpoint boundary and resumes it when a slot frees;
//! - a **permanent disk death** migrates the dead disk's queued streams to
//!   the survivors ([`FarmSim::kill_disk`]) instead of killing every
//!   tenant that touched it.
//!
//! Every decision is a pure function of the specs, the configuration and
//! the seed: the injected hangs are drawn from [`dmsim::FaultStream`]s
//! derived per (job, attempt), disk deaths fire at configured virtual
//! times, and the sweep visits jobs in a fixed order — so the whole
//! chaotic workload is bitwise-reproducible.

use dmsim::{FaultStream, StatsSnapshot};
use ooc_trace::{Args, Category, RankTrace, TraceConfig, Tracer};

use crate::farm::{FarmConfig, FarmJob, FarmReport, FarmSim};
use crate::obs::{FlightRecorder, ObsEvent, ObsKind, Sampler, WorkloadObserver};
use crate::policy::Policy;
use crate::workload::{validate_specs, AdmissionError, JobSpec};

/// Terminal fate of one guarded job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Completed on its first attempt, untouched by the executive.
    Done {
        /// Completion on the workload clock.
        completion: f64,
    },
    /// Completed after at least one kill, resubmission or preemption.
    Recovered {
        /// Completion on the workload clock.
        completion: f64,
        /// Total admissions (first run + resubmissions + resumes).
        attempts: u32,
        /// EDF preemptions among those.
        preemptions: u32,
    },
    /// Killed by the watchdog or a deadline with no re-run budget
    /// configured ([`DomainConfig::max_retries`] = 0).
    Killed {
        /// Kill time on the workload clock.
        at: f64,
    },
    /// Exhausted its re-run budget; the executive stopped resubmitting.
    Quarantined {
        /// Quarantine time on the workload clock.
        at: f64,
        /// Total admissions before quarantine.
        attempts: u32,
    },
}

impl JobOutcome {
    /// Completion time, when the job completed.
    pub fn completion(&self) -> Option<f64> {
        match self {
            JobOutcome::Done { completion } | JobOutcome::Recovered { completion, .. } => {
                Some(*completion)
            }
            _ => None,
        }
    }

    /// True for [`JobOutcome::Done`] and [`JobOutcome::Recovered`].
    pub fn completed(&self) -> bool {
        self.completion().is_some()
    }

    /// Stable lowercase label for summaries and traces.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Done { .. } => "done",
            JobOutcome::Recovered { .. } => "recovered",
            JobOutcome::Killed { .. } => "killed",
            JobOutcome::Quarantined { .. } => "quarantined",
        }
    }
}

/// Configuration of the guarded workload runtime.
#[derive(Debug, Clone)]
pub struct DomainConfig {
    /// Disk service-order policy.
    pub policy: Policy,
    /// Elevator seek penalty, seconds per non-contiguous head movement.
    pub seek_penalty: f64,
    /// Record the per-disk queue trace plus the fault-domain control rank.
    pub trace: bool,
    /// Farm capacity in logical disks. Zero sizes the farm to the widest
    /// job; nonzero refuses wider jobs at admission.
    pub disks: usize,
    /// Maximum jobs running concurrently (0 = unlimited). Overload beyond
    /// the cap triggers EDF preemption.
    pub max_concurrent: usize,
    /// Seed of the workload-level fault streams (hang injection).
    pub seed: u64,
    /// Probability that one attempt of a job hangs mid-run. Drawn per
    /// (job, attempt), so a resubmitted job usually recovers.
    pub hang_chance: f64,
    /// Watchdog quantum in virtual seconds: a running job that serves no
    /// request for this long — beyond its own largest solo request gap —
    /// is declared hung and killed. 0 disables the watchdog.
    pub watchdog_quantum: f64,
    /// Deadline factor: each job's deadline is `submit + factor *
    /// solo_makespan`. 0 disables deadlines (and with them EDF urgency).
    pub deadline_factor: f64,
    /// Re-run budget: how many times a killed job may be resubmitted
    /// before quarantine. 0 means a killed job dies terminally.
    pub max_retries: u32,
    /// Backoff base: resubmission `k` waits `backoff_base * 2^(k-1)`
    /// virtual seconds after the kill, clamped to
    /// [`DomainConfig::backoff_cap`].
    pub backoff_base: f64,
    /// Upper bound on a single backoff wait. Without it, large retry
    /// budgets overflow `2^(k-1)` to infinity and the virtual clock never
    /// reaches the resubmission — the executive would sweep forever.
    pub backoff_cap: f64,
    /// Checkpoint granularity in requests per rank: a killed or preempted
    /// job resumes from `floor(cursor / every) * every`. 0 restarts every
    /// attempt from scratch.
    pub checkpoint_every: usize,
    /// Control-plane sweep period in virtual seconds (watchdog, deadline
    /// and completion checks happen on this grid).
    pub epoch: f64,
    /// Scheduled permanent disk deaths: `(virtual time, disk index)`.
    /// Killing the last surviving disk is refused at validation.
    pub disk_deaths: Vec<(f64, usize)>,
    /// Crash flight recorder depth: the last N bus events retained per
    /// job, dumped into [`GuardedJobReport::postmortem`] when a job ends
    /// [`JobOutcome::Killed`] or [`JobOutcome::Quarantined`]. 0 disables
    /// the recorder.
    pub flight_recorder_depth: usize,
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig {
            policy: Policy::default(),
            seek_penalty: 0.0,
            trace: false,
            disks: 0,
            max_concurrent: 0,
            seed: 0,
            hang_chance: 0.0,
            watchdog_quantum: 0.0,
            deadline_factor: 0.0,
            max_retries: 2,
            backoff_base: 1.0,
            backoff_cap: 1e6,
            checkpoint_every: 4,
            epoch: 1.0,
            disk_deaths: Vec::new(),
            flight_recorder_depth: 32,
        }
    }
}

/// Per-job result of a guarded workload.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedJobReport {
    /// Display name from the spec.
    pub name: String,
    /// Job tag (1-based position in the spec slice).
    pub job: u32,
    /// Submission time.
    pub submit: f64,
    /// Deadline the executive enforced (infinity when disabled).
    pub deadline: f64,
    /// Solo makespan of the profile.
    pub solo_makespan: f64,
    /// Terminal typed outcome.
    pub outcome: JobOutcome,
    /// Total admissions (first run + resubmissions + resumes).
    pub attempts: u32,
    /// EDF preemptions suffered.
    pub preemptions: u32,
    /// Watchdog / deadline kills suffered.
    pub kills: u32,
    /// Hangs the chaos harness injected into this job's attempts.
    pub hangs_injected: u32,
    /// Faults injected into the job's capture run (all kinds).
    pub faults_injected: u64,
    /// Disk requests the capture run re-issued under the retry policy.
    pub io_retries: u64,
    /// Message re-transmissions after injected drops in the capture run.
    pub msg_retries: u64,
    /// The crash flight recorder's dump — the last
    /// [`DomainConfig::flight_recorder_depth`] bus events of this job —
    /// when the outcome is [`JobOutcome::Killed`] or
    /// [`JobOutcome::Quarantined`]; empty otherwise.
    pub postmortem: Vec<ObsEvent>,
}

/// Result of a guarded workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedReport {
    /// Per-job fates, in spec order.
    pub jobs: Vec<GuardedJobReport>,
    /// The farm's served log and per-disk metrics (every attempt's
    /// requests, including ones later rolled back to a checkpoint).
    pub farm: FarmReport,
    /// Policy the farm ran under.
    pub policy: Policy,
    /// Disk deaths that actually fired.
    pub disk_deaths: u32,
    /// The fault-domain control-plane trace (admissions, kills, resumes,
    /// preemptions, quarantines, disk deaths), when tracing was on.
    pub domain_trace: Option<RankTrace>,
}

impl GuardedReport {
    /// Workload makespan: the latest completion among completed jobs.
    pub fn makespan(&self) -> f64 {
        self.jobs
            .iter()
            .filter_map(|j| j.outcome.completion())
            .fold(0.0, f64::max)
    }

    /// Number of jobs that completed ([`JobOutcome::completed`]).
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.completed()).count()
    }
}

/// Where a job sits in the executive's state machine.
enum St {
    /// Waiting to (re)enter the farm at `at`, resuming from `resume`.
    Waiting { at: f64, resume: Option<Vec<usize>> },
    /// Running on the farm as `slot`.
    Running { slot: usize },
    /// Fate sealed.
    Terminal,
}

struct JobState {
    st: St,
    deadline: f64,
    /// Effective watchdog quantum (config quantum + max solo gap).
    quantum: f64,
    attempts: u32,
    preemptions: u32,
    kills: u32,
    hangs_injected: u32,
    /// Progress (served requests) at the last watchdog reset.
    last_progress: u64,
    /// Workload time of the last watchdog reset.
    last_progress_t: f64,
    /// First admission time, for the sampler's counter attribution.
    first_admit: Option<f64>,
    /// Flight-recorder dump captured when the fate sealed badly.
    postmortem: Vec<ObsEvent>,
    outcome: Option<JobOutcome>,
}

/// Largest idle stretch of the solo profile: the initial lead-in plus
/// inter-request gaps per rank, and the widest request itself. A healthy
/// job never goes longer than this without completing a request solo, so
/// the watchdog adds it to the configured quantum.
fn max_solo_gap(spec: &JobSpec) -> f64 {
    let mut g = 0.0f64;
    for s in &spec.profile.streams {
        let mut prev = 0.0f64;
        for r in s {
            g = g.max(r.t0 - prev).max(r.t1 - r.t0);
            prev = r.t1;
        }
    }
    g
}

/// Salt domain for workload-level fault draws, disjoint from the
/// machine-level (rank, domain) space and the job-tag space.
fn attempt_salt(job: u32, attempt: u32) -> u64 {
    ((job as u64) << 20) | attempt as u64
}

/// Run `specs` under the guarded runtime: fault domains, watchdog,
/// deadlines, checkpoint-preempt-resume and degraded-disk re-planning.
///
/// Returns one terminal [`JobOutcome`] per spec — never panics on a hung,
/// late or unlucky job.
pub fn run_workload_guarded(
    specs: &[JobSpec],
    cfg: &DomainConfig,
) -> Result<GuardedReport, AdmissionError> {
    run_guarded(specs, cfg, None)
}

/// [`run_workload_guarded`] with the observatory attached: the executive
/// publishes every control-plane decision as an [`ObsEvent`] to
/// `observer` (in non-decreasing time order) and samples the time series
/// on the `sample_every` virtual-time cadence.
///
/// Observation is transparent: the farm advance is chunked at sample
/// points (bitwise outcome-invariant), the flight recorder runs either
/// way, and the returned report is identical to the unobserved one —
/// asserted by the observer-transparency tests.
pub fn run_workload_guarded_observed(
    specs: &[JobSpec],
    cfg: &DomainConfig,
    sample_every: f64,
    observer: &mut dyn WorkloadObserver,
) -> Result<GuardedReport, AdmissionError> {
    run_guarded(specs, cfg, Some((sample_every, observer)))
}

fn run_guarded(
    specs: &[JobSpec],
    cfg: &DomainConfig,
    obs: Option<(f64, &mut dyn WorkloadObserver)>,
) -> Result<GuardedReport, AdmissionError> {
    validate_specs(specs, cfg.disks)?;
    let ndisks = match cfg.disks {
        0 => specs
            .iter()
            .map(|s| s.profile.nprocs())
            .max()
            .unwrap_or(1)
            .max(1),
        n => n,
    };
    for &(t, d) in &cfg.disk_deaths {
        assert!(
            t.is_finite() && d < ndisks,
            "disk death ({t}, {d}) outside the farm of {ndisks} disks"
        );
    }
    assert!(cfg.epoch > 0.0, "the control-plane epoch must be positive");
    assert!(
        cfg.backoff_cap >= 0.0,
        "the backoff cap must be non-negative (and not NaN)"
    );
    assert!(
        cfg.hang_chance <= 0.0 || cfg.watchdog_quantum > 0.0,
        "hang injection without a watchdog would stall the executive forever"
    );

    let farm_cfg = FarmConfig {
        policy: cfg.policy,
        seek_penalty: cfg.seek_penalty,
        trace: cfg.trace,
        // Always collect dispatch events: the flight recorder runs with or
        // without an observer, so postmortems (and thus the report) are
        // identical either way.
        observe: true,
    };
    let mut sim = FarmSim::new(ndisks, farm_cfg);
    let tracer = cfg
        .trace
        .then(|| Tracer::new(ndisks, TraceConfig::detailed()));
    let trace_instant = |name: &str, t: f64| {
        if let Some(tr) = &tracer {
            tr.instant(Category::FaultDomain, name, t, Args::default());
        }
    };
    let (mut sampler, mut observer) = match obs {
        Some((every, o)) => (Some(Sampler::new(every, ndisks)), Some(o)),
        None => (None, None),
    };
    let mut recorder = FlightRecorder::new(cfg.flight_recorder_depth);
    // Events of the current epoch, stable-sorted by stamp before flushing
    // so the published stream is globally non-decreasing in time.
    let mut epoch_buf: Vec<ObsEvent> = Vec::new();

    let mut jobs: Vec<JobState> = specs
        .iter()
        .map(|s| JobState {
            st: St::Waiting {
                at: s.submit,
                resume: None,
            },
            deadline: if cfg.deadline_factor > 0.0 {
                s.submit + cfg.deadline_factor * s.profile.makespan()
            } else {
                f64::INFINITY
            },
            quantum: if cfg.watchdog_quantum > 0.0 {
                cfg.watchdog_quantum + max_solo_gap(s)
            } else {
                f64::INFINITY
            },
            attempts: 0,
            preemptions: 0,
            kills: 0,
            hangs_injected: 0,
            last_progress: 0,
            last_progress_t: 0.0,
            first_admit: None,
            postmortem: Vec::new(),
            outcome: None,
        })
        .collect();
    // slot -> job index, for farm slots admitted so far.
    let mut slot_owner: Vec<usize> = Vec::new();
    let mut deaths: Vec<(f64, usize)> = cfg.disk_deaths.clone();
    deaths.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut next_death = 0usize;
    let mut deaths_fired = 0u32;

    let mut t = 0.0f64;
    loop {
        // 1. Scheduled disk deaths at or before the sweep time. The farm
        // migrates the dead disk's queued streams; running jobs keep going
        // on the survivors (degraded mode) instead of dying.
        while next_death < deaths.len() && deaths[next_death].0 <= t {
            let (at, disk) = deaths[next_death];
            next_death += 1;
            if sim.alive_disks() > 1 {
                let migrated = sim.kill_disk(disk);
                deaths_fired += 1;
                trace_instant(&format!("disk_death:d{disk}"), at);
                epoch_buf.push(ObsEvent {
                    t,
                    job: 0,
                    kind: ObsKind::DiskDeath { disk, migrated, at },
                });
            }
        }

        // 2. Admissions: every waiting job whose (re)submit time has come,
        // most urgent deadline first. Under overload, EDF preempts the
        // latest-deadline running job at its checkpoint boundary — but
        // only for a strictly more urgent candidate.
        let mut ready: Vec<usize> = (0..jobs.len())
            .filter(|&j| matches!(&jobs[j].st, St::Waiting { at, .. } if *at <= t))
            .collect();
        ready.sort_by(|&a, &b| {
            jobs[a]
                .deadline
                .partial_cmp(&jobs[b].deadline)
                .unwrap()
                .then(a.cmp(&b))
        });
        for j in ready {
            let running = jobs
                .iter()
                .filter(|s| matches!(s.st, St::Running { .. }))
                .count();
            if cfg.max_concurrent != 0 && running >= cfg.max_concurrent {
                // Overload: find the least urgent running job.
                let victim = (0..jobs.len())
                    .filter(|&v| matches!(jobs[v].st, St::Running { .. }))
                    .max_by(|&a, &b| {
                        jobs[a]
                            .deadline
                            .partial_cmp(&jobs[b].deadline)
                            .unwrap()
                            .then(a.cmp(&b))
                    })
                    .expect("running >= cap >= 1");
                if jobs[victim].deadline <= jobs[j].deadline {
                    continue; // nothing less urgent to evict
                }
                let St::Running { slot } = jobs[victim].st else {
                    unreachable!()
                };
                let cursors = sim.remove_job(slot);
                let resume = checkpoint_watermark(&cursors, cfg.checkpoint_every);
                jobs[victim].preemptions += 1;
                epoch_buf.push(ObsEvent {
                    t,
                    job: victim as u32 + 1,
                    kind: ObsKind::Preempted,
                });
                epoch_buf.push(ObsEvent {
                    t,
                    job: victim as u32 + 1,
                    kind: ObsKind::Checkpoint {
                        watermark: resume.iter().map(|&c| c as u64).sum(),
                    },
                });
                jobs[victim].st = St::Waiting {
                    at: t,
                    resume: Some(resume),
                };
                trace_instant(&format!("preempt:{}", specs[victim].name), t);
            }
            let St::Waiting { resume, .. } = std::mem::replace(
                &mut jobs[j].st,
                St::Terminal, // placeholder, overwritten below
            ) else {
                unreachable!()
            };
            let fj = FarmJob {
                job: j as u32 + 1,
                profile: &specs[j].profile,
                base: t.max(specs[j].submit),
                weight: specs[j].weight,
                qos_slack: specs[j].qos_slack,
            };
            let resumed = matches!(&resume, Some(w) if w.iter().any(|&c| c > 0));
            let slot = match &resume {
                Some(w) if w.iter().any(|&c| c > 0) => sim.admit_resumed(&fj, w),
                _ => sim.admit(&fj),
            };
            if slot_owner.len() <= slot {
                slot_owner.resize(slot + 1, usize::MAX);
            }
            slot_owner[slot] = j;
            jobs[j].attempts += 1;
            jobs[j].last_progress = sim.progress(slot);
            jobs[j].last_progress_t = t;
            if jobs[j].first_admit.is_none() {
                jobs[j].first_admit = Some(t);
            }
            jobs[j].st = St::Running { slot };
            trace_instant(&format!("admit:{}:a{}", specs[j].name, jobs[j].attempts), t);
            epoch_buf.push(ObsEvent {
                t,
                job: j as u32 + 1,
                kind: ObsKind::Admitted {
                    attempt: jobs[j].attempts,
                    resumed,
                },
            });
            // Chaos: this attempt may hang, per the seeded per-(job,
            // attempt) stream. The hang pins one rank's remaining requests
            // past a fraction of its solo life.
            let stream =
                FaultStream::derive(cfg.seed, attempt_salt(j as u32 + 1, jobs[j].attempts));
            if stream.chance(cfg.hang_chance) {
                let nprocs = specs[j].profile.nprocs();
                let rank = (stream.next_u64() % nprocs as u64) as usize;
                let frac = 0.25 + 0.5 * stream.next_f64();
                let at_solo = frac * specs[j].profile.rank_finish[rank];
                sim.hang(slot, rank, at_solo);
                jobs[j].hangs_injected += 1;
                trace_instant(&format!("hang_injected:{}:r{rank}", specs[j].name), t);
                epoch_buf.push(ObsEvent {
                    t,
                    job: j as u32 + 1,
                    kind: ObsKind::HangInjected { rank },
                });
            }
        }

        // 3. Advance the farm one epoch, chunking at sample grid points
        // when the observatory is attached (chunked replay is bitwise
        // outcome-invariant, so sampling never perturbs the run).
        t += cfg.epoch;
        if let Some(sampler) = sampler.as_mut() {
            while let Some(s) = sampler.due(t) {
                sim.run_until(s);
                // Chaos counters attributable so far: the capture counters
                // of every job first admitted by the sample time.
                let mut cum = StatsSnapshot::default();
                for (spec, st) in specs.iter().zip(&jobs) {
                    if st.first_admit.is_some_and(|fa| fa <= s) {
                        cum = cum.merge(&StatsSnapshot::fault_counts(
                            spec.profile.faults_injected,
                            spec.profile.io_retries,
                            spec.profile.msg_retries,
                        ));
                    }
                }
                let sample = sampler.take(&sim, cum);
                if let Some(o) = observer.as_mut() {
                    o.sample(&sample);
                }
            }
        }
        sim.run_until(t);
        epoch_buf.extend(sim.drain_obs());

        // 4. Sweep running jobs: completion, then deadline, then watchdog.
        let mut sealed_badly: Vec<usize> = Vec::new();
        for j in 0..jobs.len() {
            let St::Running { slot } = jobs[j].st else {
                continue;
            };
            if sim.job_done(slot) {
                let completion = sim.completion(slot).expect("job is done");
                let recovered = jobs[j].kills > 0 || jobs[j].preemptions > 0;
                jobs[j].outcome = Some(if recovered {
                    JobOutcome::Recovered {
                        completion,
                        attempts: jobs[j].attempts,
                        preemptions: jobs[j].preemptions,
                    }
                } else {
                    JobOutcome::Done { completion }
                });
                jobs[j].st = St::Terminal;
                sim.remove_job(slot);
                trace_instant(&format!("complete:{}", specs[j].name), completion);
                epoch_buf.push(ObsEvent {
                    // Stamped at the detecting sweep; the actual
                    // completion (≤ t, or past it for a rigid compute
                    // tail) rides in the payload.
                    t,
                    job: j as u32 + 1,
                    kind: ObsKind::Completed {
                        completion,
                        recovered,
                    },
                });
                continue;
            }
            let late = t > jobs[j].deadline;
            let progress = sim.progress(slot);
            if progress > jobs[j].last_progress {
                jobs[j].last_progress = progress;
                jobs[j].last_progress_t = t;
            }
            let hung = t - jobs[j].last_progress_t >= jobs[j].quantum;
            if !late && !hung {
                continue;
            }
            // Kill the attempt: roll back to the checkpoint watermark and
            // either resubmit with backoff or seal the fate.
            let cursors = sim.remove_job(slot);
            jobs[j].kills += 1;
            let why = if late { "deadline" } else { "watchdog" };
            trace_instant(&format!("kill:{}:{}", specs[j].name, why), t);
            epoch_buf.push(ObsEvent {
                t,
                job: j as u32 + 1,
                kind: if late {
                    ObsKind::DeadlineKill
                } else {
                    ObsKind::WatchdogKill
                },
            });
            if cfg.max_retries == 0 {
                jobs[j].outcome = Some(JobOutcome::Killed { at: t });
                jobs[j].st = St::Terminal;
                epoch_buf.push(ObsEvent {
                    t,
                    job: j as u32 + 1,
                    kind: ObsKind::Killed,
                });
                sealed_badly.push(j);
            } else if jobs[j].kills > cfg.max_retries {
                jobs[j].outcome = Some(JobOutcome::Quarantined {
                    at: t,
                    attempts: jobs[j].attempts,
                });
                jobs[j].st = St::Terminal;
                trace_instant(&format!("quarantine:{}", specs[j].name), t);
                epoch_buf.push(ObsEvent {
                    t,
                    job: j as u32 + 1,
                    kind: ObsKind::Quarantined {
                        attempts: jobs[j].attempts,
                    },
                });
                sealed_badly.push(j);
            } else {
                let resume = checkpoint_watermark(&cursors, cfg.checkpoint_every);
                // Exponent clamped below f64 overflow (2^1023 is finite) so
                // the product never goes 0 * inf = NaN; the cap then bounds
                // the wait itself for large retry budgets.
                let exp = f64::powi(2.0, (jobs[j].kills as i32 - 1).min(1023));
                let backoff = (cfg.backoff_base * exp).min(cfg.backoff_cap);
                let at = t + backoff;
                if late {
                    // A renegotiated deadline for the retry; keeping the
                    // blown one would guarantee a kill loop into
                    // quarantine regardless of behavior.
                    jobs[j].deadline = if cfg.deadline_factor > 0.0 {
                        at + cfg.deadline_factor * specs[j].profile.makespan()
                    } else {
                        f64::INFINITY
                    };
                }
                epoch_buf.push(ObsEvent {
                    t,
                    job: j as u32 + 1,
                    kind: ObsKind::Checkpoint {
                        watermark: resume.iter().map(|&c| c as u64).sum(),
                    },
                });
                epoch_buf.push(ObsEvent {
                    t,
                    job: j as u32 + 1,
                    kind: ObsKind::RetryScheduled {
                        attempt: jobs[j].attempts + 1,
                        backoff,
                        resume_at: at,
                    },
                });
                jobs[j].st = St::Waiting {
                    at,
                    resume: Some(resume),
                };
            }
        }

        // 5. Flush the epoch's events: stable-sort by stamp (control
        // events at the epoch edges, dispatches in between), feed the
        // flight recorder, publish to the observer — then capture
        // postmortems for jobs whose fate just sealed badly, so the dump
        // includes their terminal events.
        epoch_buf.sort_by(|a, b| a.t.total_cmp(&b.t));
        for e in &epoch_buf {
            recorder.push(e);
            if let Some(o) = observer.as_mut() {
                o.event(e);
            }
        }
        epoch_buf.clear();
        for j in sealed_badly {
            jobs[j].postmortem = recorder.dump(j as u32 + 1);
        }

        if jobs.iter().all(|s| matches!(s.st, St::Terminal)) {
            break;
        }
        // Fast-forward across idle stretches (everyone waiting on backoff
        // or future submits) so backoff cost is virtual time, not host
        // sweeps. The next sweep still lands on the epoch grid.
        let next_event = jobs
            .iter()
            .filter_map(|s| match &s.st {
                St::Waiting { at, .. } => Some(*at),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        let any_running = jobs.iter().any(|s| matches!(s.st, St::Running { .. }));
        if !any_running && next_event.is_finite() && next_event > t + cfg.epoch {
            let skip = ((next_event - t) / cfg.epoch).floor();
            t += (skip - 1.0).max(0.0) * cfg.epoch;
        }
    }

    let farm = sim.finish();
    let out = GuardedReport {
        jobs: specs
            .iter()
            .zip(&jobs)
            .enumerate()
            .map(|(i, (s, st))| GuardedJobReport {
                name: s.name.clone(),
                job: i as u32 + 1,
                submit: s.submit,
                deadline: st.deadline,
                solo_makespan: s.profile.makespan(),
                outcome: st.outcome.clone().expect("terminal"),
                attempts: st.attempts,
                preemptions: st.preemptions,
                kills: st.kills,
                hangs_injected: st.hangs_injected,
                faults_injected: s.profile.faults_injected,
                io_retries: s.profile.io_retries,
                msg_retries: s.profile.msg_retries,
                postmortem: st.postmortem.clone(),
            })
            .collect(),
        farm,
        policy: cfg.policy,
        disk_deaths: deaths_fired,
        domain_trace: tracer.map(|tr| tr.finish()),
    };
    Ok(out)
}

/// Roll per-rank cursors back to the checkpoint grid.
fn checkpoint_watermark(cursors: &[usize], every: usize) -> Vec<usize> {
    cursors
        .iter()
        .map(|&c| c.checked_div(every).map_or(0, |q| q * every))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{IoReq, JobProfile};
    use crate::workload::WorkloadConfig;

    fn profile(n: usize, service: f64, gap: f64) -> JobProfile {
        let mut reqs = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            reqs.push(IoReq {
                t0: t,
                t1: t + service,
                requests: 1,
                bytes: 64,
                offset: Some(64 * i as u64),
                write: false,
            });
            t += service + gap;
        }
        JobProfile {
            rank_finish: vec![t],
            streams: vec![reqs],
            ..JobProfile::default()
        }
    }

    fn quiet_cfg() -> DomainConfig {
        DomainConfig {
            policy: Policy::Fifo,
            watchdog_quantum: 5.0,
            epoch: 0.5,
            ..DomainConfig::default()
        }
    }

    #[test]
    fn fault_free_guarded_run_matches_the_plain_workload() {
        let specs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::new(format!("j{i}"), profile(6 + i, 1.0, 0.25)))
            .collect();
        let guarded = run_workload_guarded(&specs, &quiet_cfg()).unwrap();
        let plain = crate::workload::run_workload(
            &specs,
            &WorkloadConfig {
                policy: Policy::Fifo,
                ..WorkloadConfig::default()
            },
        )
        .unwrap();
        for (g, p) in guarded.jobs.iter().zip(&plain.jobs) {
            assert_eq!(g.attempts, 1);
            let JobOutcome::Done { completion } = g.outcome else {
                panic!("fault-free job not Done: {:?}", g.outcome);
            };
            assert_eq!(
                completion.to_bits(),
                p.completion.to_bits(),
                "job {}: guarded completion diverged from the plain runtime",
                g.name
            );
        }
    }

    #[test]
    fn watchdog_kills_a_hung_job_and_the_retry_recovers_it() {
        let specs = vec![
            JobSpec::new("victim", profile(8, 1.0, 0.0)),
            JobSpec::new("bystander", profile(8, 1.0, 0.0)),
        ];
        let cfg = DomainConfig {
            hang_chance: 1.0, // every attempt draws a hang...
            seed: 7,
            watchdog_quantum: 4.0,
            max_retries: 5,
            backoff_base: 0.5,
            ..quiet_cfg()
        };
        // ...so with hang_chance 1.0 every retry hangs again and both jobs
        // must end quarantined — but deterministically, with no panic.
        let rep = run_workload_guarded(&specs, &cfg).unwrap();
        for j in &rep.jobs {
            assert!(
                matches!(j.outcome, JobOutcome::Quarantined { .. }),
                "always-hanging job must quarantine, got {:?}",
                j.outcome
            );
            assert_eq!(j.kills, cfg.max_retries + 1);
            assert!(j.hangs_injected >= 1);
        }
        // Now only the first attempt hangs: seed chosen so retries draw no
        // hang; the job must recover.
        let cfg2 = DomainConfig {
            hang_chance: 0.45,
            seed: 11,
            ..cfg
        };
        let rep2 = run_workload_guarded(&specs, &cfg2).unwrap();
        assert!(
            rep2.jobs.iter().any(|j| j.kills > 0),
            "some attempt must have hung under 45% hang chance (seed-dependent)"
        );
        for j in &rep2.jobs {
            assert!(
                j.outcome.completed(),
                "job {} should finish eventually: {:?}",
                j.name,
                j.outcome
            );
            if j.kills > 0 {
                assert!(matches!(j.outcome, JobOutcome::Recovered { .. }));
            }
        }
    }

    #[test]
    fn huge_retry_budgets_terminate_under_the_backoff_cap() {
        // Regression: `backoff_base * 2^(kills-1)` overflows f64 to
        // infinity near kill 1075, so with an 1100-retry budget the
        // resubmission time becomes `t + inf` and the virtual clock can
        // never reach it — the executive used to sweep forever. The cap
        // bounds every wait, so the run must now terminate with finite
        // times after exhausting the whole budget.
        let specs = vec![JobSpec::new("stubborn", profile(8, 1.0, 0.0))];
        let cfg = DomainConfig {
            hang_chance: 1.0, // every attempt hangs; all 1100 retries burn
            seed: 5,
            watchdog_quantum: 2.0,
            max_retries: 1100,
            backoff_base: 0.5,
            backoff_cap: 4.0,
            ..quiet_cfg()
        };
        let rep = run_workload_guarded(&specs, &cfg).unwrap();
        let j = &rep.jobs[0];
        assert!(
            matches!(j.outcome, JobOutcome::Quarantined { at, .. } if at.is_finite()),
            "budget exhaustion must quarantine at a finite time: {:?}",
            j.outcome
        );
        assert_eq!(j.kills, cfg.max_retries + 1);
        // Every wait was capped: 1101 attempts, each costing at most the
        // solo makespan (the hang can land anywhere in it) plus a watchdog
        // round, the capped backoff, and epoch slop — linear in the retry
        // budget, where the uncapped backoff alone would be 2^1100.
        let bound = (cfg.max_retries + 1) as f64
            * (specs[0].profile.makespan()
                + 2.0 * cfg.watchdog_quantum
                + cfg.backoff_cap
                + 2.0 * cfg.epoch);
        assert!(
            rep.makespan() <= bound,
            "makespan {} exceeds the capped-backoff bound {}",
            rep.makespan(),
            bound
        );
    }

    #[test]
    fn zero_retry_budget_kills_terminally() {
        let specs = vec![JobSpec::new("doomed", profile(8, 1.0, 0.0))];
        let cfg = DomainConfig {
            hang_chance: 1.0,
            seed: 3,
            watchdog_quantum: 2.0,
            max_retries: 0,
            ..quiet_cfg()
        };
        let rep = run_workload_guarded(&specs, &cfg).unwrap();
        assert!(matches!(rep.jobs[0].outcome, JobOutcome::Killed { .. }));
    }

    #[test]
    fn edf_preempts_the_latest_deadline_job_under_overload() {
        // Two long lax jobs occupy both slots; a short urgent job arrives
        // later and must preempt one of them.
        let lax = profile(30, 1.0, 0.0);
        let urgent = profile(4, 1.0, 0.0);
        let specs = vec![
            JobSpec::new("lax-a", lax.clone()),
            JobSpec::new("lax-b", lax),
            JobSpec::new("urgent", urgent).with_submit(3.0),
        ];
        let cfg = DomainConfig {
            max_concurrent: 2,
            deadline_factor: 10.0, // lax deadline = 300, urgent = 43
            checkpoint_every: 4,
            ..quiet_cfg()
        };
        let rep = run_workload_guarded(&specs, &cfg).unwrap();
        assert_eq!(
            rep.jobs.iter().map(|j| j.preemptions).sum::<u32>(),
            1,
            "exactly one lax job is preempted"
        );
        for j in &rep.jobs {
            assert!(j.outcome.completed(), "{}: {:?}", j.name, j.outcome);
        }
        let urgent = &rep.jobs[2];
        assert!(
            urgent.outcome.completion().unwrap() <= urgent.deadline,
            "EDF exists to make the urgent deadline"
        );
        let preempted = rep.jobs.iter().find(|j| j.preemptions > 0).unwrap();
        assert!(
            matches!(preempted.outcome, JobOutcome::Recovered { .. }),
            "a preempted-and-resumed job reports Recovered"
        );
    }

    #[test]
    fn disk_death_degrades_the_farm_without_killing_tenants() {
        let wide = JobProfile {
            rank_finish: vec![12.0, 12.0],
            streams: vec![
                profile(10, 1.0, 0.2).streams[0].clone(),
                profile(10, 1.0, 0.2).streams[0].clone(),
            ],
            ..JobProfile::default()
        };
        let specs = vec![
            JobSpec::new("wide-a", wide.clone()),
            JobSpec::new("wide-b", wide),
        ];
        let cfg = DomainConfig {
            disk_deaths: vec![(3.0, 1)],
            ..quiet_cfg()
        };
        let rep = run_workload_guarded(&specs, &cfg).unwrap();
        assert_eq!(rep.disk_deaths, 1);
        for j in &rep.jobs {
            assert!(
                j.outcome.completed(),
                "tenant {} must survive the disk death: {:?}",
                j.name,
                j.outcome
            );
            assert_eq!(j.kills, 0, "re-planning, not killing");
        }
        // The survivors' completions stretch past solo (one disk serves
        // both ranks' tails).
        assert!(rep.makespan() > 12.0);
    }

    #[test]
    fn guarded_chaos_is_bitwise_deterministic() {
        let specs: Vec<JobSpec> = (0..6)
            .map(|i| {
                JobSpec::new(format!("j{i}"), profile(10 + i, 0.5, 0.1)).with_submit(i as f64 * 0.8)
            })
            .collect();
        let cfg = DomainConfig {
            hang_chance: 0.4,
            seed: 42,
            watchdog_quantum: 3.0,
            deadline_factor: 12.0,
            max_concurrent: 3,
            disk_deaths: vec![(4.0, 0)],
            trace: true,
            ..quiet_cfg()
        };
        let a = run_workload_guarded(&specs, &cfg).unwrap();
        let b = run_workload_guarded(&specs, &cfg).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.farm.served, b.farm.served);
        assert_eq!(a.domain_trace, b.domain_trace);
        // The control-plane trace is real and exports cleanly.
        let tr = a.domain_trace.unwrap();
        assert!(tr
            .events
            .iter()
            .any(|e| e.cat == Category::FaultDomain && e.name.starts_with("admit")));
        let full = ooc_trace::Trace {
            ranks: a
                .farm
                .trace
                .map(|t| t.ranks)
                .unwrap_or_default()
                .into_iter()
                .chain([tr])
                .collect(),
        };
        let json = ooc_trace::perfetto::to_chrome_json(&full);
        ooc_trace::json::parse(&json).expect("valid JSON");
    }

    #[test]
    fn guarded_rejects_malformed_batches() {
        let ok = JobSpec::new("ok", profile(3, 1.0, 0.0));
        let empty = JobSpec::new("empty", JobProfile::default());
        assert!(matches!(
            run_workload_guarded(&[empty], &quiet_cfg()),
            Err(AdmissionError::NoRanks { .. })
        ));
        let dup = vec![ok.clone(), ok.clone()];
        assert!(matches!(
            run_workload_guarded(&dup, &quiet_cfg()),
            Err(AdmissionError::DuplicateJobId { .. })
        ));
        let wide = JobSpec::new(
            "wide",
            JobProfile {
                rank_finish: vec![1.0; 4],
                streams: vec![Vec::new(); 4],
                ..JobProfile::default()
            },
        );
        let cfg = DomainConfig {
            disks: 2,
            ..quiet_cfg()
        };
        assert!(matches!(
            run_workload_guarded(&[wide], &cfg),
            Err(AdmissionError::CapacityExceeded { .. })
        ));
        let nan = JobSpec::new("nan", profile(3, 1.0, 0.0)).with_submit(f64::NAN);
        assert!(matches!(
            run_workload_guarded(&[nan], &quiet_cfg()),
            Err(AdmissionError::BadSubmitTime { .. })
        ));
    }
}
