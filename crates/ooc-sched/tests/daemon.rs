//! Loopback integration tests for `oocd`, the multi-tenant I/O daemon:
//! submit/drain/scorecard round-trips, byte-identical determinism across
//! daemon instances regardless of socket interleaving, the malformed-frame
//! abuse corpus, mid-stream client disconnects, drain semantics and read
//! timeouts. Everything runs over real sockets on the loopback interface
//! (TCP on every platform, Unix-domain where available).

use std::time::Duration;

use ooc_sched::serve::{
    serve, submit_json, write_frame, Client, Listener, ProtoError, ServeConfig,
};
use ooc_sched::{DomainConfig, IoReq, JobProfile, JobSpec};
use ooc_trace::json::Json;

fn profile(reqs: usize, dt: f64) -> JobProfile {
    let stream: Vec<IoReq> = (0..reqs)
        .map(|i| IoReq {
            t0: i as f64 * dt,
            t1: i as f64 * dt + 0.5 * dt,
            requests: 1,
            bytes: 4096,
            offset: Some(i as u64 * 4096),
            write: i % 3 == 0,
        })
        .collect();
    JobProfile {
        rank_finish: vec![reqs as f64 * dt; 2],
        streams: vec![stream.clone(), stream],
        ..JobProfile::default()
    }
}

fn specs() -> Vec<(String, JobSpec)> {
    (0..6)
        .map(|i| {
            let tenant = format!("tenant-{}", i % 3);
            let spec = JobSpec::new(format!("job-{i}"), profile(4 + i, 1.0))
                .with_submit(i as f64 * 0.5)
                .with_weight(1.0 + i as f64);
            (tenant, spec)
        })
        .collect()
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        domain: DomainConfig {
            seed: 11,
            hang_chance: 0.3,
            watchdog_quantum: 3.0,
            deadline_factor: 4.0,
            ..DomainConfig::default()
        },
        sample_every: 2.0,
        read_timeout: Some(Duration::from_secs(5)),
        ..ServeConfig::default()
    }
}

fn start_tcp(cfg: ServeConfig) -> ooc_sched::DaemonHandle {
    serve(Listener::bind_tcp("127.0.0.1:0").unwrap(), cfg)
}

fn stop(handle: ooc_sched::DaemonHandle) {
    handle.shutdown();
    handle.join().unwrap();
}

fn ok_num(resp: &Json, key: &str) -> f64 {
    resp.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("missing {key} in {resp:?}"))
}

#[test]
fn submit_drain_scorecard_round_trip_over_tcp() {
    let daemon = start_tcp(chaos_cfg());
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();

    let st = c.request("{\"op\":\"status\"}").unwrap();
    assert_eq!(st.get("phase").and_then(Json::as_str), Some("accepting"));
    assert_eq!(ok_num(&st, "jobs"), 0.0);

    for (tenant, spec) in specs() {
        let resp = c.request(&submit_json(&tenant, &spec)).unwrap();
        assert!(matches!(resp.get("ok"), Some(Json::Bool(true))));
    }
    let st = c.request("{\"op\":\"status\"}").unwrap();
    assert_eq!(ok_num(&st, "jobs"), 6.0);
    assert_eq!(ok_num(&st, "tenants"), 3.0);

    // Scorecard before any drain is a typed refusal, not a panic.
    let err = c.request("{\"op\":\"scorecard\"}").unwrap_err();
    assert!(matches!(err, ProtoError::Refused { ref kind, .. } if kind == "not_ready"));

    let summary = c.request("{\"op\":\"drain\"}").unwrap();
    assert_eq!(ok_num(&summary, "jobs"), 6.0);
    assert!(ok_num(&summary, "makespan") > 0.0);
    let fnv = summary.get("stream_fnv").and_then(Json::as_str).unwrap();
    assert_eq!(fnv.len(), 16);

    let card = c.request("{\"op\":\"scorecard\"}").unwrap();
    let sc = card.get("scorecard").expect("scorecard body");
    assert_eq!(ok_num(sc, "jobs"), 6.0);
    assert_eq!(sc.get("stream_fnv").and_then(Json::as_str), Some(fnv));
    let prom = card.get("prom").and_then(Json::as_str).unwrap();
    ooc_trace::prom::validate(prom).expect("exposition validates");

    // Post-drain submissions are refused with the drain-phase error.
    let (tenant, spec) = &specs()[0];
    let late = JobSpec::new("latecomer", spec.profile.clone());
    let err = c.request(&submit_json(tenant, &late)).unwrap_err();
    assert!(matches!(err, ProtoError::Refused { ref kind, .. } if kind == "draining"));
    // And a second drain is refused too.
    let err = c.request("{\"op\":\"drain\"}").unwrap_err();
    assert!(matches!(err, ProtoError::Refused { ref kind, .. } if kind == "draining"));

    drop(c);
    stop(daemon);
}

/// The daemon is a virtual-time service: the wall-clock interleaving of
/// submitting sockets must not influence the drained run. Two daemons fed
/// the same logical submissions — one job per connection in forward order,
/// then everything on one connection in reverse order — emit byte-identical
/// summaries, scorecards and Prometheus expositions.
#[test]
fn two_daemons_with_permuted_arrivals_emit_byte_identical_artifacts() {
    let run = |reverse: bool, per_conn: bool| -> (String, String) {
        let daemon = start_tcp(chaos_cfg());
        let mut order = specs();
        if reverse {
            order.reverse();
        }
        if per_conn {
            for (tenant, spec) in &order {
                let mut c = Client::connect_tcp(&daemon.addr).unwrap();
                c.request(&submit_json(tenant, spec)).unwrap();
            }
        } else {
            let mut c = Client::connect_tcp(&daemon.addr).unwrap();
            for (tenant, spec) in &order {
                c.request(&submit_json(tenant, spec)).unwrap();
            }
        }
        let mut c = Client::connect_tcp(&daemon.addr).unwrap();
        c.request("{\"op\":\"drain\"}").unwrap();
        let card = c.request("{\"op\":\"scorecard\"}").unwrap();
        let prom = card.get("prom").and_then(Json::as_str).unwrap().to_string();
        let sc = format!("{:?}", card.get("scorecard").unwrap());
        drop(c);
        stop(daemon);
        (sc, prom)
    };
    let a = run(false, true);
    let b = run(true, false);
    assert_eq!(a.0, b.0, "scorecards diverged across arrival orders");
    assert_eq!(a.1, b.1, "prom expositions diverged across arrival orders");
}

/// Abuse corpus: every malformed frame comes back as a typed error (or a
/// closed connection where the framing itself is destroyed) and the daemon
/// keeps serving fresh connections afterwards.
#[test]
fn malformed_frames_get_typed_errors_and_never_kill_the_daemon() {
    let daemon = start_tcp(ServeConfig {
        max_frame: 1024,
        ..chaos_cfg()
    });

    // Oversized frame announcement: typed error, connection closed.
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();
    c.send_raw(&u32::MAX.to_le_bytes()).unwrap();
    let err = c.next_frame().unwrap().unwrap();
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("frame_too_large")
    );
    assert!(c.next_frame().unwrap().is_none(), "connection must close");

    // Truncated length prefix: client hangs up mid-prefix; daemon drops it.
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();
    c.send_raw(&[0x08, 0x00]).unwrap();
    drop(c);

    // Truncated payload: announce 64 bytes, deliver 3, hang up.
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();
    c.send_raw(&64u32.to_le_bytes()).unwrap();
    c.send_raw(b"abc").unwrap();
    drop(c);

    // Invalid JSON in a well-formed frame: typed error, connection LIVES.
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();
    let err = c.request("{not json").unwrap_err();
    assert!(matches!(err, ProtoError::BadJson { .. }), "{err:?}");
    // NaN is invalid JSON for this protocol too.
    let err = c.request("{\"op\":\"submit\",\"job\":NaN}").unwrap_err();
    assert!(matches!(err, ProtoError::BadJson { .. }), "{err:?}");

    // Unknown op / missing op / wrong types: typed errors, same connection.
    for bad in [
        "{\"op\":\"frobnicate\"}",
        "{\"noop\":true}",
        "{\"op\":42}",
        "{\"op\":\"submit\"}",
        "{\"op\":\"submit\",\"job\":{\"name\":\"x\"}}",
    ] {
        let err = c.request(bad).unwrap_err();
        assert!(
            matches!(err, ProtoError::BadRequest { .. }),
            "{bad}: {err:?}"
        );
    }

    // Structurally malformed profile: the typed admission gate refuses it.
    let err = c
        .request(
            "{\"op\":\"submit\",\"job\":{\"name\":\"poison\",\"submit\":0,\"profile\":\
             {\"rank_finish\":[2.0,3.0],\"streams\":[[[0.0,1.0,1,64,null,false]]]}}}",
        )
        .unwrap_err();
    assert!(
        matches!(err, ProtoError::Refused { ref kind, ref detail, .. }
            if kind == "admission" && detail.contains("malformed profile")),
        "{err:?}"
    );

    // Duplicate job id across *different* connections is refused too.
    let (tenant, spec) = &specs()[0];
    c.request(&submit_json(tenant, spec)).unwrap();
    let mut c2 = Client::connect_tcp(&daemon.addr).unwrap();
    let err = c2.request(&submit_json(tenant, spec)).unwrap_err();
    assert!(
        matches!(err, ProtoError::Refused { ref kind, ref detail, .. }
            if kind == "admission" && detail.contains("more than once")),
        "{err:?}"
    );

    // After all that abuse the daemon still drains the surviving job.
    let summary = c2.request("{\"op\":\"drain\"}").unwrap();
    assert_eq!(ok_num(&summary, "jobs"), 1.0);
    drop(c);
    drop(c2);
    stop(daemon);
}

/// Subscribers get the full observatory stream; one disconnecting mid-run
/// is dropped from the fan-out without stalling the drain, and a late
/// subscriber after the drain replays the identical stream.
#[test]
fn subscribers_stream_replay_and_survive_mid_run_disconnects() {
    let daemon = start_tcp(chaos_cfg());
    let mut submitter = Client::connect_tcp(&daemon.addr).unwrap();
    for (tenant, spec) in specs() {
        submitter.request(&submit_json(&tenant, &spec)).unwrap();
    }

    // Live subscriber, registered before the drain.
    let mut live = Client::connect_tcp(&daemon.addr).unwrap();
    let ack = live.request("{\"op\":\"subscribe\"}").unwrap();
    assert!(matches!(ack.get("subscribed"), Some(Json::Bool(true))));

    // A second subscriber that vanishes immediately — the daemon must shrug.
    let mut doomed = Client::connect_tcp(&daemon.addr).unwrap();
    doomed.request("{\"op\":\"subscribe\"}").unwrap();
    drop(doomed);

    let summary = submitter.request("{\"op\":\"drain\"}").unwrap();
    let fnv = summary
        .get("stream_fnv")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Drain the live stream to its end frame.
    let mut live_lines = Vec::new();
    let end = loop {
        let frame = live
            .next_frame()
            .unwrap()
            .expect("stream ends with a frame");
        if matches!(frame.get("end"), Some(Json::Bool(true))) {
            break frame;
        }
        live_lines.push(
            frame
                .get("line")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
    };
    assert!(!live_lines.is_empty(), "the run must publish events");
    assert_eq!(
        end.get("stream_fnv").and_then(Json::as_str),
        Some(fnv.as_str())
    );
    let events = ok_num(&end, "events") as usize;
    let samples = ok_num(&end, "samples") as usize;
    assert_eq!(live_lines.len(), events + samples);

    // Late subscriber: full replay, identical lines, same end frame.
    let mut late = Client::connect_tcp(&daemon.addr).unwrap();
    late.request("{\"op\":\"subscribe\"}").unwrap();
    let mut late_lines = Vec::new();
    let late_end = loop {
        let frame = late
            .next_frame()
            .unwrap()
            .expect("replay ends with a frame");
        if matches!(frame.get("end"), Some(Json::Bool(true))) {
            break frame;
        }
        late_lines.push(
            frame
                .get("line")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
    };
    assert_eq!(late_lines, live_lines, "replay must match the live stream");
    assert_eq!(
        late_end.get("stream_fnv").and_then(Json::as_str),
        Some(fnv.as_str())
    );

    drop(submitter);
    drop(live);
    drop(late);
    stop(daemon);
}

/// A client that goes silent mid-frame is disconnected by the read
/// timeout; the daemon itself keeps serving.
#[test]
fn silent_clients_hit_the_read_timeout_and_are_dropped() {
    let daemon = start_tcp(ServeConfig {
        read_timeout: Some(Duration::from_millis(80)),
        ..chaos_cfg()
    });
    let mut mute = Client::connect_tcp(&daemon.addr).unwrap();
    // Half a frame, then silence.
    mute.send_raw(&32u32.to_le_bytes()).unwrap();
    // The daemon reports the transport error (best-effort) and closes; all
    // this client can rely on is that the connection ends.
    let outcome = mute.next_frame();
    match outcome {
        Ok(None) => {}
        Ok(Some(frame)) => {
            assert!(
                matches!(frame.get("ok"), Some(Json::Bool(false))),
                "{frame:?}"
            );
            assert!(mute.next_frame().unwrap().is_none());
        }
        Err(_) => {} // reset mid-read is also a legal way to die
    }
    // Fresh connections still work.
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();
    let st = c.request("{\"op\":\"status\"}").unwrap();
    assert_eq!(st.get("phase").and_then(Json::as_str), Some("accepting"));
    drop(mute);
    drop(c);
    stop(daemon);
}

#[cfg(unix)]
#[test]
fn unix_domain_socket_serves_the_same_protocol() {
    let dir = std::env::temp_dir().join(format!("oocd-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("oocd.sock");
    let daemon = serve(Listener::bind_unix(&path).unwrap(), chaos_cfg());

    let mut c = Client::connect_unix(path.to_str().unwrap()).unwrap();
    for (tenant, spec) in specs() {
        c.request(&submit_json(&tenant, &spec)).unwrap();
    }
    let summary = c.request("{\"op\":\"drain\"}").unwrap();
    assert_eq!(ok_num(&summary, "jobs"), 6.0);

    // The scorecard matches a TCP daemon fed the same submissions.
    let card_unix = format!(
        "{:?}",
        c.request("{\"op\":\"scorecard\"}")
            .unwrap()
            .get("scorecard")
            .unwrap()
    );
    drop(c);
    stop(daemon);
    assert!(!path.exists(), "the socket file is unlinked on shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    let tcp = start_tcp(chaos_cfg());
    let mut c = Client::connect_tcp(&tcp.addr).unwrap();
    for (tenant, spec) in specs() {
        c.request(&submit_json(&tenant, &spec)).unwrap();
    }
    c.request("{\"op\":\"drain\"}").unwrap();
    let card_tcp = format!(
        "{:?}",
        c.request("{\"op\":\"scorecard\"}")
            .unwrap()
            .get("scorecard")
            .unwrap()
    );
    drop(c);
    stop(tcp);
    assert_eq!(card_unix, card_tcp, "transport must not leak into results");
}

/// Draining an empty session is legal: zero jobs, zero makespan, a
/// scorecard with no quantiles (they are unknown, not zero).
#[test]
fn draining_an_empty_session_yields_the_zero_completions_scorecard() {
    let daemon = start_tcp(chaos_cfg());
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();
    let summary = c.request("{\"op\":\"drain\"}").unwrap();
    assert_eq!(ok_num(&summary, "jobs"), 0.0);
    assert_eq!(ok_num(&summary, "makespan"), 0.0);
    let card = c.request("{\"op\":\"scorecard\"}").unwrap();
    let sc = card.get("scorecard").unwrap();
    assert!(matches!(sc.get("p95_turnaround"), Some(Json::Null)));
    let prom = card.get("prom").and_then(Json::as_str).unwrap();
    ooc_trace::prom::validate(prom).unwrap();
    assert!(!prom.contains("ooc_slo_turnaround_seconds{"));
    drop(c);
    stop(daemon);
}

/// `write_frame` is what the raw-bytes abuse cases bypass — sanity-check
/// that a shutdown op over it closes cleanly from the daemon side.
#[test]
fn shutdown_op_stops_the_daemon() {
    let daemon = start_tcp(chaos_cfg());
    let addr = daemon.addr.clone();
    let mut c = Client::connect_tcp(&addr).unwrap();
    let mut raw = Vec::new();
    write_frame(&mut raw, "{\"op\":\"shutdown\"}").unwrap();
    c.send_raw(&raw).unwrap();
    let resp = c.next_frame().unwrap().unwrap();
    assert!(matches!(resp.get("stopping"), Some(Json::Bool(true))));
    daemon.join().unwrap();
}
