//! Property tests for the disk-farm scheduler: work conservation, fairness
//! / no starvation under weighted fair share, and bitwise determinism of
//! the queue service order, over randomized synthetic workloads.

use proptest::prelude::*;

use ooc_sched::{simulate, FarmConfig, FarmJob, IoReq, JobProfile, Policy, Served};

/// Synthetic single-rank profile: `n` requests of `service` seconds with
/// `gap` idle seconds between them, offsets advancing contiguously.
fn make_profile(n: usize, service: f64, gap: f64) -> JobProfile {
    let mut reqs = Vec::new();
    let mut t = 0.0;
    for i in 0..n {
        reqs.push(IoReq {
            t0: t,
            t1: t + service,
            requests: 1,
            bytes: 4096,
            offset: Some(4096 * i as u64),
            write: i % 3 == 2,
        });
        t += service + gap;
    }
    JobProfile {
        rank_finish: vec![t],
        streams: vec![reqs],
        ..JobProfile::default()
    }
}

/// Check work conservation on a served log: per disk, (a) busy time equals
/// the service sum, and (b) the disk never idles while a request that was
/// already armed is waiting — any service gap must end at the arrival of
/// some request served after it.
fn assert_work_conserving(served: &[Served], disk_busy: &[f64]) {
    for (disk, &busy) in disk_busy.iter().enumerate() {
        let log: Vec<&Served> = served.iter().filter(|s| s.disk == disk).collect();
        let total: f64 = log.iter().map(|s| s.service).sum();
        assert!(
            (total - busy).abs() < 1e-9,
            "disk {disk}: busy {busy} != service sum {total}"
        );
        // The log is in service order per disk.
        for w in log.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(
                b.start >= a.finish - 1e-12,
                "overlapping service on one disk"
            );
            if b.start > a.finish + 1e-12 {
                // Idle gap: nothing served later may have been armed
                // during it (closed-loop arrivals are final in the log).
                for s in &log {
                    if s.start >= b.start {
                        assert!(
                            s.arrival >= b.start - 1e-12,
                            "disk {disk} idled [{}, {}] while a request from \
                             job {} (seq {}) was armed at {}",
                            a.finish,
                            b.start,
                            s.job,
                            s.seq,
                            s.arrival
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn queueing_policies_are_work_conserving(
        njobs in 2usize..5,
        nreqs in 1usize..30,
        svc10 in 1u32..8,
        gap10 in 0u32..6,
        policy_ix in 0usize..4,
    ) {
        let policy = [Policy::Fifo, Policy::Elevator, Policy::Deadline, Policy::FairShare][policy_ix];
        let service = svc10 as f64 / 10.0;
        let gap = gap10 as f64 / 10.0;
        let profiles: Vec<JobProfile> = (0..njobs)
            .map(|j| make_profile(nreqs + j, service, gap))
            .collect();
        let jobs: Vec<FarmJob> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| FarmJob::new(i as u32 + 1, p))
            .collect();
        let rep = simulate(&jobs, &FarmConfig { policy, ..FarmConfig::default() });
        // Completeness: every submitted request is served exactly once.
        let expect: usize = profiles.iter().map(|p| p.total_requests()).sum();
        prop_assert_eq!(rep.served.len(), expect);
        assert_work_conserving(&rep.served, &rep.disk_busy);
    }

    #[test]
    fn fair_share_bounds_attained_service_skew(
        nreqs in 10usize..40,
        svc10 in 1u32..10,
    ) {
        // Two equal-weight, fully backlogged jobs (zero gaps): at the end
        // of the shorter job's life, attained service may differ by at
        // most one service quantum.
        let service = svc10 as f64 / 10.0;
        let p = make_profile(nreqs, service, 0.0);
        let jobs = [FarmJob::new(1, &p), FarmJob::new(2, &p)];
        let rep = simulate(
            &jobs,
            &FarmConfig { policy: Policy::FairShare, ..FarmConfig::default() },
        );
        let mut attained = [0.0f64; 2];
        let mut max_skew = 0.0f64;
        for s in &rep.served {
            attained[(s.job - 1) as usize] += s.service;
            max_skew = max_skew.max((attained[0] - attained[1]).abs());
        }
        prop_assert!(
            max_skew <= service + 1e-9,
            "equal-weight backlogged jobs diverged by {max_skew} (> one quantum {service})"
        );
    }

    #[test]
    fn fair_share_never_starves_a_light_job(
        heavy_reqs in 50usize..120,
        light_reqs in 3usize..10,
        weight10 in 10u32..40,
    ) {
        // A heavy backlogged job cannot starve a light one: with J jobs in
        // closed loop, each light request waits at most J in-flight
        // service quanta.
        let heavy = make_profile(heavy_reqs, 1.0, 0.0);
        let light = make_profile(light_reqs, 0.2, 0.0);
        let mut hj = FarmJob::new(1, &heavy);
        hj.weight = 1.0;
        let mut lj = FarmJob::new(2, &light);
        lj.weight = weight10 as f64 / 10.0;
        let rep = simulate(
            &[hj, lj],
            &FarmConfig { policy: Policy::FairShare, ..FarmConfig::default() },
        );
        let max_service = 1.0; // the heavy job's quantum dominates
        for s in rep.served.iter().filter(|s| s.job == 2) {
            prop_assert!(
                s.wait() <= 2.0 * max_service + 1e-9,
                "light request seq {} waited {}",
                s.seq,
                s.wait()
            );
        }
        // And the light job's completion is far before the heavy one's.
        prop_assert!(rep.jobs[1].completion < rep.jobs[0].completion);
    }

    #[test]
    fn service_order_is_bitwise_deterministic(
        njobs in 2usize..5,
        nreqs in 1usize..25,
        policy_ix in 0usize..5,
        seek10 in 0u32..3,
    ) {
        let policy = Policy::ALL[policy_ix];
        let profiles: Vec<JobProfile> = (0..njobs)
            .map(|j| make_profile(nreqs + 2 * j, 0.3 + j as f64 * 0.1, 0.05))
            .collect();
        let jobs: Vec<FarmJob> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut j = FarmJob::new(i as u32 + 1, p);
                j.weight = 1.0 + i as f64;
                j.base = i as f64 * 0.7;
                j
            })
            .collect();
        let cfg = FarmConfig {
            policy,
            seek_penalty: seek10 as f64 / 10.0,
            ..FarmConfig::default()
        };
        let a = simulate(&jobs, &cfg);
        let b = simulate(&jobs, &cfg);
        prop_assert_eq!(a.served.len(), b.served.len());
        for (x, y) in a.served.iter().zip(b.served.iter()) {
            prop_assert_eq!(x.job, y.job);
            prop_assert_eq!(x.seq, y.seq);
            prop_assert_eq!(x.start.to_bits(), y.start.to_bits());
            prop_assert_eq!(x.finish.to_bits(), y.finish.to_bits());
        }
        prop_assert_eq!(a.jobs, b.jobs);
    }
}

// ---------------------------------------------------------------------------
// Guarded-runtime liveness: under arbitrary chaos (hang injection, tight
// deadlines, overload-driven EDF preemption, bounded re-run budgets) the
// fault-domain executive always terminates with a typed outcome per job —
// a preempted job always eventually resumes or is quarantined, and
// quarantine never deadlocks admission of the others.

use ooc_sched::{run_workload_guarded, DomainConfig, JobOutcome, JobSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn guarded_chaos_always_reaches_typed_outcomes(
        njobs in 2usize..6,
        nreqs in 4usize..16,
        hang10 in 0u32..8,
        max_retries in 0u32..4,
        cap in 0usize..3,
        seed in 0u64..1000,
    ) {
        let specs: Vec<JobSpec> = (0..njobs)
            .map(|i| {
                JobSpec::new(format!("j{i}"), make_profile(nreqs + i, 0.5, 0.1))
                    .with_submit(i as f64 * 0.5)
            })
            .collect();
        let cfg = DomainConfig {
            policy: Policy::Fifo,
            seed,
            hang_chance: hang10 as f64 / 10.0,
            watchdog_quantum: 2.0,
            deadline_factor: 6.0,
            max_retries,
            backoff_base: 0.5,
            checkpoint_every: 2,
            max_concurrent: cap,
            epoch: 0.5,
            ..DomainConfig::default()
        };
        // Liveness is the return itself: the executive never spins on a
        // hung, late or quarantined job.
        let rep = run_workload_guarded(&specs, &cfg).unwrap();
        prop_assert_eq!(rep.jobs.len(), njobs);
        for j in &rep.jobs {
            // Admission accounting: every admission is the first run, a
            // post-kill resubmission, or a post-preemption resume — and a
            // preempted job always came back (it cannot end waiting).
            match &j.outcome {
                JobOutcome::Done { .. } => {
                    prop_assert_eq!(j.kills, 0);
                    prop_assert_eq!(j.preemptions, 0);
                    prop_assert_eq!(j.attempts, 1);
                }
                JobOutcome::Recovered { attempts, preemptions, .. } => {
                    prop_assert_eq!(*attempts, 1 + j.kills + j.preemptions);
                    prop_assert_eq!(*preemptions, j.preemptions);
                    prop_assert!(j.kills <= max_retries);
                }
                JobOutcome::Killed { .. } => {
                    prop_assert_eq!(max_retries, 0);
                    prop_assert_eq!(j.kills, 1);
                    prop_assert_eq!(j.attempts, 1 + j.preemptions);
                }
                JobOutcome::Quarantined { attempts, .. } => {
                    prop_assert_eq!(j.kills, max_retries + 1);
                    prop_assert_eq!(*attempts, j.kills + j.preemptions);
                }
            }
        }
        // Quarantine of some jobs never starves the rest: every job that
        // kept its budget finished.
        for j in &rep.jobs {
            if j.kills <= max_retries || max_retries == 0 && j.kills == 0 {
                prop_assert!(
                    j.outcome.completed(),
                    "job {} within budget but not complete: {:?}",
                    &j.name,
                    &j.outcome
                );
            }
        }
        // And the whole chaotic run is bitwise-reproducible.
        let again = run_workload_guarded(&specs, &cfg).unwrap();
        prop_assert_eq!(&rep.jobs, &again.jobs);
        prop_assert_eq!(&rep.farm.served, &again.farm.served);
    }
}
