//! Engine parity under chaos: whole workloads — captured concurrently on
//! worker pools of various widths, with machine-level fault injection on —
//! must be bitwise-identical to the same workloads captured with one OS
//! thread per rank, and the kill/resume paths must preserve that parity.

use std::sync::Arc;

use dmsim::{FaultConfig, WorkerPool};
use noderun::{start, RunConfig};
use ooc_core::{compile_source, CompiledProgram, CompilerOptions};
use ooc_sched::{
    profile, run_workload, run_workload_live, JobSpec, Policy, ProgramJob, WorkloadConfig,
};
use proptest::prelude::*;

fn gaxpy() -> Arc<CompiledProgram> {
    Arc::new(compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap())
}

/// A fleet of chaos-injected jobs with distinct tags (distinct fault/RNG
/// streams) and staggered submits.
fn fleet(compiled: &Arc<CompiledProgram>, njobs: usize, seed: u64) -> Vec<ProgramJob> {
    (0..njobs)
        .map(|i| {
            let cfg = RunConfig {
                fault: Some(FaultConfig::chaos(seed)),
                ..RunConfig::default()
            };
            ProgramJob::new(format!("j{i}"), Arc::clone(compiled))
                .with_cfg(cfg)
                .with_job_tag(i as u32 + 1)
                .with_submit(i as f64 * 0.01)
                .with_weight(1.0 + i as f64 * 0.5)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn pooled_chaos_workloads_match_threaded_capture_bitwise(
        seed in 0u64..500,
        njobs in 2usize..4,
    ) {
        let compiled = gaxpy();
        let jobs = fleet(&compiled, njobs, seed);
        let wcfg = WorkloadConfig {
            policy: Policy::FairShare,
            max_concurrent: 2,
            ..WorkloadConfig::default()
        };
        // Threads baseline: sequential solo captures (one OS thread per
        // rank), then the same deterministic admission/replay.
        let specs: Vec<JobSpec> = jobs
            .iter()
            .map(|j| {
                JobSpec::new(j.name.clone(), profile(&j.compiled, &j.cfg).unwrap())
                    .with_submit(j.submit)
                    .with_weight(j.weight)
            })
            .collect();
        let threaded = run_workload(&specs, &wcfg).unwrap();
        // Observer streams are part of the parity contract: the threaded
        // observed run is the baseline the pooled engines must reproduce
        // byte for byte.
        let cadence = specs[0].profile.makespan() / 4.0;
        let mut baseline_log = ooc_sched::EventLog::default();
        let observed =
            ooc_sched::run_workload_observed(&specs, &wcfg, cadence, &mut baseline_log).unwrap();
        prop_assert_eq!(&observed, &threaded, "observation perturbed the workload");
        let baseline_stream = baseline_log.render();
        for workers in [1usize, 2, 8] {
            let pool = WorkerPool::new(workers);
            let pooled = run_workload_live(&jobs, &wcfg, &pool).unwrap();
            prop_assert_eq!(
                &pooled, &threaded,
                "Pool({}) chaos workload diverged from Threads", workers
            );
            let mut log = ooc_sched::EventLog::default();
            let pooled_obs =
                ooc_sched::run_workload_live_observed(&jobs, &wcfg, &pool, cadence, &mut log)
                    .unwrap();
            prop_assert_eq!(&pooled_obs, &threaded, "Pool({}) observed run diverged", workers);
            prop_assert_eq!(
                &log.render(), &baseline_stream,
                "Pool({}) event stream diverged from Threads", workers
            );
        }
    }

    #[test]
    fn kill_and_resume_paths_preserve_chaos_parity(
        seed in 0u64..500,
    ) {
        let compiled = gaxpy();
        let cfg = RunConfig {
            fault: Some(FaultConfig::chaos(seed)),
            job: 1,
            trace: Some(ooc_trace::TraceConfig::detailed()),
            ..RunConfig::default()
        };
        let solo = profile(&compiled, &cfg).unwrap();
        for workers in [1usize, 2, 8] {
            let pool = WorkerPool::new(workers);
            // Kill path: an aborted bystander must not perturb the victim's
            // capture on the same pool.
            let doomed = start(Arc::clone(&compiled), Arc::new(cfg.clone()), &pool).unwrap();
            let jobs = fleet(&compiled, 1, seed);
            let live = ooc_sched::profile_all_on(&jobs, &pool).unwrap();
            doomed.abort();
            prop_assert_eq!(&live[0], &solo, "Pool({}) capture next to an abort", workers);
            // Resume path: a preempted-then-resumed run still captures the
            // identical profile.
            let restarted = start(Arc::clone(&compiled), Arc::new(cfg.clone()), &pool)
                .unwrap()
                .preempt()
                .resume();
            let mut out = restarted.wait().unwrap();
            let trace = out.report.take_trace().expect("capture traces");
            let rank_finish = out
                .report
                .per_proc()
                .iter()
                .map(|p| p.finish_time)
                .collect();
            let resumed =
                ooc_sched::JobProfile::from_trace(&trace, rank_finish)
                    .with_counters(&out.report.totals());
            prop_assert_eq!(&resumed, &solo, "Pool({}) preempt+resume capture", workers);
        }
    }
}
