//! Regression tests: the farm must not change what it does not schedule.
//!
//! The contract of this subsystem is that it is *additive*: a single job
//! replayed under the default (static-share) policy — or under FIFO, where
//! it never has to wait — reproduces the pre-farm simulated times exactly,
//! bit for bit, and a run traced with the default configuration exports a
//! Perfetto file byte-identical to one from a build without the scheduling
//! layer (no offset fields leak in).

use noderun::{run, RunConfig};
use ooc_core::{compile_source, CompilerOptions};
use ooc_sched::{
    profile, run_workload, run_workload_observed, FarmConfig, FarmJob, JobSpec, Policy,
    WorkloadConfig,
};
use ooc_trace::TraceConfig;

fn compiled_gaxpy() -> ooc_core::CompiledProgram {
    compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap()
}

#[test]
fn profiling_does_not_change_simulated_time() {
    let compiled = compiled_gaxpy();
    let baseline = run(&compiled, &RunConfig::default()).unwrap();
    let p = profile(&compiled, &RunConfig::default()).unwrap();
    assert_eq!(
        p.makespan().to_bits(),
        baseline.report.elapsed().to_bits(),
        "detailed tracing must not perturb the clock"
    );
    assert_eq!(p.nprocs(), compiled.nprocs());
    assert!(p.total_requests() > 0, "gaxpy does I/O");
    // Every captured request carries the offset detail for the elevator.
    for s in &p.streams {
        assert!(s.iter().all(|r| r.offset.is_some()));
    }
}

#[test]
fn single_job_fifo_reproduces_solo_times_exactly() {
    let compiled = compiled_gaxpy();
    let baseline = run(&compiled, &RunConfig::default()).unwrap();
    let p = profile(&compiled, &RunConfig::default()).unwrap();
    for policy in [Policy::Fifo, Policy::StaticShare] {
        let rep = ooc_sched::simulate(
            &[FarmJob::new(1, &p)],
            &FarmConfig {
                policy,
                ..FarmConfig::default()
            },
        );
        assert_eq!(
            rep.jobs[0].completion.to_bits(),
            baseline.report.elapsed().to_bits(),
            "{}: solo completion must be the solo makespan, bitwise",
            policy.name()
        );
        assert_eq!(rep.jobs[0].total_wait, 0.0, "{}", policy.name());
        // Every request is served exactly on its solo schedule.
        for sv in &rep.served {
            let orig = &p.streams[sv.disk][sv.seq];
            assert_eq!(sv.start.to_bits(), orig.t0.to_bits());
            assert_eq!(sv.finish.to_bits(), orig.t1.to_bits());
        }
        // Work conservation bookkeeping: busy time is the service sum.
        let total: f64 = rep.served.iter().map(|s| s.service).sum();
        let busy: f64 = rep.disk_busy.iter().sum();
        assert!((total - busy).abs() < 1e-12);
    }
}

#[test]
fn single_job_workload_under_default_policy_is_bitwise_legacy() {
    let compiled = compiled_gaxpy();
    let baseline = run(&compiled, &RunConfig::default()).unwrap();
    let p = profile(&compiled, &RunConfig::default()).unwrap();
    let rep = run_workload(&[JobSpec::new("solo", p)], &WorkloadConfig::default()).unwrap();
    assert_eq!(
        rep.policy,
        Policy::StaticShare,
        "default is the legacy divide"
    );
    assert_eq!(
        rep.jobs[0].completion.to_bits(),
        baseline.report.elapsed().to_bits()
    );
    assert_eq!(rep.jobs[0].admit, 0.0);
    assert_eq!(rep.jobs[0].stretch(), 1.0);
}

#[test]
fn static_share_stays_exact_even_with_prefetch_overlap() {
    // Prefetch makes overlap-track disk spans; a queueing policy would
    // serialize any overlap, but the static divide must stay exact.
    let compiled = compiled_gaxpy();
    let cfg = RunConfig {
        prefetch: true,
        ..RunConfig::default()
    };
    let baseline = run(&compiled, &cfg).unwrap();
    let p = profile(&compiled, &cfg).unwrap();
    let rep = run_workload(&[JobSpec::new("pf", p)], &WorkloadConfig::default()).unwrap();
    assert_eq!(
        rep.jobs[0].completion.to_bits(),
        baseline.report.elapsed().to_bits()
    );
}

#[test]
fn default_trace_exports_are_byte_identical_and_offset_free() {
    // The offset detail is gated behind TraceConfig::detailed(); a default
    // traced run must export the same bytes as before this subsystem
    // existed — in particular, no "offset" keys.
    let compiled = compiled_gaxpy();
    let cfg = RunConfig {
        trace: Some(TraceConfig::on()),
        ..RunConfig::default()
    };
    let mut a = run(&compiled, &cfg).unwrap();
    let mut b = run(&compiled, &cfg).unwrap();
    let ja = ooc_trace::perfetto::to_chrome_json(&a.report.take_trace().unwrap());
    let jb = ooc_trace::perfetto::to_chrome_json(&b.report.take_trace().unwrap());
    assert_eq!(ja, jb, "traced runs are byte-reproducible");
    assert!(
        !ja.contains("\"offset\""),
        "no detail fields without io_detail"
    );

    // And the detailed profile run does carry them.
    let cfg = RunConfig {
        trace: Some(TraceConfig::detailed()),
        ..RunConfig::default()
    };
    let mut c = run(&compiled, &cfg).unwrap();
    let jc = ooc_trace::perfetto::to_chrome_json(&c.report.take_trace().unwrap());
    assert!(jc.contains("\"offset\""));
}

#[test]
fn contention_slows_jobs_and_fair_share_bounds_the_damage() {
    // Two identical gaxpy jobs on the same farm: both must finish later
    // than solo under any queueing policy, and the farm trace must export.
    let compiled = compiled_gaxpy();
    let p = profile(&compiled, &RunConfig::default()).unwrap();
    let solo = p.makespan();
    for policy in [
        Policy::Fifo,
        Policy::Elevator,
        Policy::Deadline,
        Policy::FairShare,
    ] {
        let rep = run_workload(
            &[JobSpec::new("a", p.clone()), JobSpec::new("b", p.clone())],
            &WorkloadConfig {
                policy,
                trace: true,
                ..WorkloadConfig::default()
            },
        )
        .unwrap();
        for j in &rep.jobs {
            assert!(
                j.completion >= solo,
                "{}: contention never speeds a job up",
                policy.name()
            );
        }
        assert!(
            rep.jobs.iter().any(|j| j.total_wait > 0.0),
            "{}: identical overlapping jobs must queue",
            policy.name()
        );
        let trace = rep.farm.trace.as_ref().expect("trace requested");
        assert_eq!(
            trace.ranks.len(),
            compiled.nprocs(),
            "one timeline per disk"
        );
        // Queueing produces overlapping waits, but they live on the
        // nesting-exempt queue track: every disk timeline stays well
        // nested.
        for rt in &trace.ranks {
            ooc_trace::check_well_nested(rt)
                .unwrap_or_else(|e| panic!("{}: farm trace nesting: {e}", policy.name()));
        }
        let json = ooc_trace::perfetto::to_chrome_json(trace);
        ooc_trace::json::parse(&json).expect("farm trace is valid JSON");
    }
}

#[test]
fn observed_workload_is_transparent_and_its_traces_stay_well_nested() {
    // Attaching the observatory must not change the report, the farm
    // trace, or the guarded domain trace — and the streams it publishes
    // must be byte-reproducible.
    let compiled = compiled_gaxpy();
    let p = profile(&compiled, &RunConfig::default()).unwrap();
    let specs = [
        JobSpec::new("a", p.clone()),
        JobSpec::new("b", p.clone()).with_submit(0.01),
    ];
    let cfg = WorkloadConfig {
        policy: Policy::Fifo,
        trace: true,
        ..WorkloadConfig::default()
    };
    let plain = run_workload(&specs, &cfg).unwrap();
    let mut log = ooc_sched::EventLog::default();
    let cadence = p.makespan() / 4.0;
    let observed = ooc_sched::run_workload_observed(&specs, &cfg, cadence, &mut log).unwrap();
    assert_eq!(plain, observed, "observation perturbed the workload");
    for rt in &observed.farm.trace.as_ref().unwrap().ranks {
        ooc_trace::check_well_nested(rt).expect("observed farm trace nesting");
    }
    let mut log2 = ooc_sched::EventLog::default();
    run_workload_observed(&specs, &cfg, cadence, &mut log2).unwrap();
    assert_eq!(log.render(), log2.render(), "stream is not reproducible");

    // Same transparency for the guarded executive, domain trace included.
    let dcfg = ooc_sched::DomainConfig {
        policy: Policy::Fifo,
        trace: true,
        ..ooc_sched::DomainConfig::default()
    };
    let gplain = ooc_sched::run_workload_guarded(&specs, &dcfg).unwrap();
    let mut glog = ooc_sched::EventLog::default();
    let gobs = ooc_sched::run_workload_guarded_observed(&specs, &dcfg, cadence, &mut glog).unwrap();
    assert_eq!(gplain, gobs, "observation perturbed the guarded run");
    ooc_trace::check_well_nested(gobs.domain_trace.as_ref().unwrap())
        .expect("observed domain trace nesting");
    assert!(!glog.events.is_empty() && !glog.samples.is_empty());
}
