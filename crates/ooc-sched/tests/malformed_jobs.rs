//! Admission-error corpus: malformed or inadmissible job submissions must
//! come back as typed [`AdmissionError`]s from every workload entry point
//! — `run_workload`, `run_workload_live` and `run_workload_guarded` — and
//! never as panics.

use std::sync::Arc;

use dmsim::WorkerPool;
use ooc_sched::{
    run_workload, run_workload_guarded, run_workload_live, AdmissionError, DomainConfig, IoReq,
    JobProfile, JobSpec, ProgramJob, WorkloadConfig, WorkloadError,
};

fn tiny_profile() -> JobProfile {
    JobProfile {
        rank_finish: vec![2.0],
        streams: vec![vec![IoReq {
            t0: 0.0,
            t1: 1.0,
            requests: 1,
            bytes: 64,
            offset: Some(0),
            write: false,
        }]],
        ..JobProfile::default()
    }
}

fn wide_profile(ranks: usize) -> JobProfile {
    JobProfile {
        rank_finish: vec![1.0; ranks],
        streams: vec![Vec::new(); ranks],
        ..JobProfile::default()
    }
}

#[test]
fn zero_rank_job_is_refused() {
    let specs = [JobSpec::new("empty", JobProfile::default())];
    let err = run_workload(&specs, &WorkloadConfig::default()).unwrap_err();
    assert_eq!(
        err,
        AdmissionError::NoRanks {
            job: "empty".into()
        }
    );
    assert!(err.to_string().contains("zero ranks"));
}

#[test]
fn job_wider_than_the_farm_is_refused() {
    let specs = [JobSpec::new("wide", wide_profile(8))];
    let cfg = WorkloadConfig {
        disks: 4,
        ..WorkloadConfig::default()
    };
    let err = run_workload(&specs, &cfg).unwrap_err();
    assert_eq!(
        err,
        AdmissionError::CapacityExceeded {
            job: "wide".into(),
            ranks: 8,
            disks: 4,
        }
    );
    // Zero (auto-sized) capacity admits any width.
    assert!(run_workload(&specs, &WorkloadConfig::default()).is_ok());
}

#[test]
fn duplicate_job_ids_are_refused() {
    let specs = [
        JobSpec::new("twin", tiny_profile()),
        JobSpec::new("other", tiny_profile()),
        JobSpec::new("twin", tiny_profile()),
    ];
    let err = run_workload(&specs, &WorkloadConfig::default()).unwrap_err();
    assert_eq!(err, AdmissionError::DuplicateJobId { job: "twin".into() });
}

#[test]
fn non_finite_submit_times_are_refused_not_panicked() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let specs = [
            JobSpec::new("ok", tiny_profile()),
            JobSpec::new("bad", tiny_profile()).with_submit(bad),
        ];
        let err = run_workload(&specs, &WorkloadConfig::default()).unwrap_err();
        assert!(
            matches!(err, AdmissionError::BadSubmitTime { ref job, .. } if job == "bad"),
            "submit {bad}: got {err:?}"
        );
    }
}

#[test]
fn structurally_unsound_profiles_are_refused_not_replayed() {
    // Each mutation yields a profile whose replay would poison the farm's
    // time arithmetic (NaN comparisons, -inf arrivals) or index out of
    // bounds — precisely what a truncated or hand-corrupted replay file
    // submitted to the daemon looks like.
    let poison: Vec<(&str, JobProfile)> = vec![
        ("nan_t0", {
            let mut p = tiny_profile();
            p.streams[0][0].t0 = f64::NAN;
            p
        }),
        ("inf_t1", {
            let mut p = tiny_profile();
            p.streams[0][0].t1 = f64::INFINITY;
            p
        }),
        ("negative_span", {
            let mut p = tiny_profile();
            p.streams[0][0].t1 = -1.0;
            p
        }),
        ("negative_t0", {
            let mut p = tiny_profile();
            p.streams[0][0].t0 = -2.0;
            p.streams[0][0].t1 = -1.0;
            p
        }),
        ("nan_rank_finish", {
            let mut p = tiny_profile();
            p.rank_finish[0] = f64::NAN;
            p
        }),
        ("truncated_streams", {
            let mut p = tiny_profile();
            p.rank_finish.push(3.0); // two ranks, one stream
            p
        }),
    ];
    for (label, profile) in poison {
        let specs = [JobSpec::new(label, profile)];
        let err = run_workload(&specs, &WorkloadConfig::default()).unwrap_err();
        assert!(
            matches!(err, AdmissionError::MalformedProfile { ref job, .. } if job == label),
            "{label}: got {err:?}"
        );
        assert!(
            matches!(
                run_workload_guarded(&specs, &DomainConfig::default()),
                Err(AdmissionError::MalformedProfile { .. })
            ),
            "{label}: the guarded runtime must refuse it too"
        );
    }
}

#[test]
fn the_guarded_runtime_shares_the_same_corpus() {
    let cfg = DomainConfig::default();
    assert!(matches!(
        run_workload_guarded(&[JobSpec::new("e", JobProfile::default())], &cfg),
        Err(AdmissionError::NoRanks { .. })
    ));
    assert!(matches!(
        run_workload_guarded(
            &[
                JobSpec::new("x", tiny_profile()),
                JobSpec::new("x", tiny_profile())
            ],
            &cfg
        ),
        Err(AdmissionError::DuplicateJobId { .. })
    ));
    let capped = DomainConfig {
        disks: 1,
        ..DomainConfig::default()
    };
    assert!(matches!(
        run_workload_guarded(&[JobSpec::new("w", wide_profile(2))], &capped),
        Err(AdmissionError::CapacityExceeded { .. })
    ));
}

#[test]
fn live_workload_refuses_duplicate_job_tags_before_running_anything() {
    let compiled = Arc::new(
        ooc_core::compile_source(hpf::GAXPY_SOURCE, &ooc_core::CompilerOptions::default()).unwrap(),
    );
    let pool = WorkerPool::new(1);
    let jobs = [
        ProgramJob::new("a", Arc::clone(&compiled)).with_job_tag(3),
        ProgramJob::new("b", Arc::clone(&compiled)).with_job_tag(3),
    ];
    let err = run_workload_live(&jobs, &WorkloadConfig::default(), &pool).unwrap_err();
    assert!(
        matches!(
            err,
            WorkloadError::Admission(AdmissionError::DuplicateJobId { .. })
        ),
        "got {err:?}"
    );
    // Distinct tags (or untagged jobs) pass.
    let jobs = [
        ProgramJob::new("a", Arc::clone(&compiled)).with_job_tag(1),
        ProgramJob::new("b", compiled).with_job_tag(2),
    ];
    assert!(run_workload_live(&jobs, &WorkloadConfig::default(), &pool).is_ok());
}

#[test]
fn admission_errors_are_std_errors_with_readable_messages() {
    let errors: Vec<AdmissionError> = vec![
        AdmissionError::NoRanks { job: "j".into() },
        AdmissionError::CapacityExceeded {
            job: "j".into(),
            ranks: 9,
            disks: 2,
        },
        AdmissionError::DuplicateJobId { job: "j".into() },
        AdmissionError::BadSubmitTime {
            job: "j".into(),
            submit: f64::NAN,
        },
        AdmissionError::MalformedProfile {
            job: "j".into(),
            reason: "rank 0: bad finish time NaN".into(),
        },
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(msg.contains('j'), "{msg}");
        let _: &dyn std::error::Error = &e;
    }
}
