//! Irregular (inspector–executor) jobs through the scheduling stack: the
//! compiled SpMV example must be solo-profilable like any affine program,
//! replay bitwise through the guarded workload runtime, and be admissible
//! through the `oocd` daemon — the farm schedules I/O request streams and
//! neither knows nor cares that some of them were produced by a runtime
//! inspector rather than a compile-time slab plan.

use noderun::{init_fn, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions};
use ooc_sched::serve::{serve, submit_json, Client, Listener, ServeConfig};
use ooc_sched::{profile, run_workload, JobSpec, WorkloadConfig};
use ooc_trace::{Category, TraceConfig};

const SN: usize = 64;
const SNNZ: usize = 512;

fn spmv_job() -> (ooc_core::CompiledProgram, RunConfig) {
    let compiled = compile_source(hpf::SPMV_SOURCE, &CompilerOptions::default()).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init
        .insert("rowptr".into(), init_fn(|g| (g[0] * (SNNZ / SN)) as f32));
    cfg.init.insert(
        "colidx".into(),
        init_fn(|g| ((g[0] * 37 + (g[0] / 3) * 11) % SN) as f32),
    );
    cfg.init.insert(
        "vals".into(),
        init_fn(|g| ((g[0] % 89) as f32) * 0.25 + 1.0),
    );
    cfg.init
        .insert("x".into(), init_fn(|g| (g[0] % 17) as f32 * 0.5 + 0.125));
    (compiled, cfg)
}

#[test]
fn spmv_solo_profile_captures_the_inspector_and_gather_io() {
    let (compiled, cfg) = spmv_job();
    let baseline = run(&compiled, &cfg).unwrap();
    let p = profile(&compiled, &cfg).unwrap();
    assert_eq!(
        p.makespan().to_bits(),
        baseline.report.elapsed().to_bits(),
        "profiling an irregular job must not perturb the clock"
    );
    assert_eq!(p.nprocs(), compiled.nprocs());
    assert!(p.total_requests() > 0, "spmv does I/O");
    // Elevator admissibility: every captured request carries its offset.
    for s in &p.streams {
        assert!(s.iter().all(|r| r.offset.is_some()));
    }

    // The detailed trace distinguishes inspector from executor phases.
    let mut traced_cfg = cfg.clone();
    traced_cfg.trace = Some(TraceConfig::detailed());
    let mut out = run(&compiled, &traced_cfg).unwrap();
    let trace = out.report.take_trace().expect("tracing enabled");
    let mut saw = (false, false);
    for rt in &trace.ranks {
        for ev in &rt.events {
            match ev.cat {
                Category::Inspector => saw.0 = true,
                Category::Gather => saw.1 = true,
                _ => {}
            }
        }
    }
    assert!(saw.0, "trace must tag the inspector phase");
    assert!(saw.1, "trace must tag the gather phase");
}

#[test]
fn spmv_replays_bitwise_through_the_workload_runtime() {
    let (compiled, cfg) = spmv_job();
    let baseline = run(&compiled, &cfg).unwrap();
    let p = profile(&compiled, &cfg).unwrap();
    let rep = run_workload(&[JobSpec::new("spmv", p)], &WorkloadConfig::default()).unwrap();
    assert_eq!(rep.jobs.len(), 1);
    assert_eq!(
        rep.makespan().to_bits(),
        baseline.report.elapsed().to_bits(),
        "a solo irregular job under the default policy is bitwise legacy"
    );
}

#[test]
fn spmv_is_admissible_through_the_oocd_daemon() {
    let (compiled, cfg) = spmv_job();
    let p = profile(&compiled, &cfg).unwrap();

    let daemon = serve(
        Listener::bind_tcp("127.0.0.1:0").unwrap(),
        ServeConfig::default(),
    );
    let mut c = Client::connect_tcp(&daemon.addr).unwrap();
    // A mixed tenant batch: the irregular job next to an affine one.
    let spmv_spec = JobSpec::new("spmv", p.clone());
    let resp = c.request(&submit_json("irregular", &spmv_spec)).unwrap();
    assert!(
        matches!(resp.get("ok"), Some(ooc_trace::json::Json::Bool(true))),
        "daemon refused the irregular job: {resp:?}"
    );
    let gaxpy = compile_source(hpf::GAXPY_SOURCE, &CompilerOptions::default()).unwrap();
    let mut gcfg = RunConfig::default();
    gcfg.init
        .insert("a".into(), init_fn(|g| (g[0] + 2 * g[1]) as f32 * 0.001));
    gcfg.init
        .insert("b".into(), init_fn(|g| (g[0] * 3 + g[1]) as f32 * 0.001));
    let gp = profile(&gaxpy, &gcfg).unwrap();
    let resp = c
        .request(&submit_json("affine", &JobSpec::new("gaxpy", gp)))
        .unwrap();
    assert!(matches!(
        resp.get("ok"),
        Some(ooc_trace::json::Json::Bool(true))
    ));

    let summary = c.request("{\"op\":\"drain\"}").unwrap();
    let jobs = summary
        .get("jobs")
        .and_then(ooc_trace::json::Json::as_num)
        .unwrap();
    assert_eq!(jobs, 2.0, "both jobs scheduled: {summary:?}");
    let makespan = summary
        .get("makespan")
        .and_then(ooc_trace::json::Json::as_num)
        .unwrap();
    assert!(makespan > 0.0);

    drop(c);
    daemon.shutdown();
    daemon.join().unwrap();
}
