//! Out-of-core local arrays and the per-processor array environment.
//!
//! An [`ArrayDesc`] is the compile-time description of one out-of-core
//! array: global shape, element kind, distribution and on-disk layout. The
//! [`OocEnv`] is the runtime side: it lives on one simulated processor and
//! owns the logical disk plus one Local Array File per array (§2.3's model —
//! a processor can only touch its own LAF).
//!
//! Section reads and writes move data between the LAF and in-core buffers.
//! In-core buffers (ICLAs) are always in *section column-major order*
//! regardless of the file layout, so compute kernels never care how the
//! compiler chose to organize the bytes on disk; the reorder between layout
//! order and section order happens during the copy, as a PASSION-style
//! runtime does.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pario::{ElemKind, IoCharge, IoError, LocalArrayFile, LogicalDisk, NoCharge};

use crate::dist::Distribution;
use crate::layout::FileLayout;

use crate::section::Section;
use crate::shape::Shape;

/// Identifier of an out-of-core array within one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

/// Compile-time description of an out-of-core array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDesc {
    /// Program-unique id.
    pub id: ArrayId,
    /// Source-level name (for diagnostics and reports).
    pub name: String,
    /// Element kind stored in the LAF.
    pub elem: ElemKind,
    /// HPF distribution of the global array.
    pub dist: Distribution,
    /// Linearization of each OCLA inside its LAF — the compiler's storage
    /// reorganization decision.
    pub layout: FileLayout,
}

impl ArrayDesc {
    /// Descriptor with a column-major default layout.
    pub fn new(id: ArrayId, name: impl Into<String>, elem: ElemKind, dist: Distribution) -> Self {
        let ndims = dist.global().ndims();
        ArrayDesc {
            id,
            name: name.into(),
            elem,
            dist,
            layout: FileLayout::column_major(ndims),
        }
    }

    /// Replace the file layout (builder style).
    pub fn with_layout(mut self, layout: FileLayout) -> Self {
        assert_eq!(layout.ndims(), self.dist.global().ndims());
        self.layout = layout;
        self
    }

    /// Global shape.
    pub fn global_shape(&self) -> &Shape {
        self.dist.global()
    }

    /// OCLA shape on `rank`.
    pub fn local_shape(&self, rank: usize) -> Shape {
        self.dist.local_shape(rank)
    }
}

/// Per-processor out-of-core array environment: the logical disk and the
/// local array files living on it.
pub struct OocEnv {
    rank: usize,
    disk: LogicalDisk,
    files: HashMap<ArrayId, LocalArrayFile>,
    sieve: pario::SievePolicy,
}

impl OocEnv {
    /// Environment backed by memory (the default for experiments).
    pub fn in_memory(rank: usize) -> Self {
        OocEnv {
            rank,
            disk: LogicalDisk::in_memory(),
            files: HashMap::new(),
            sieve: pario::SievePolicy::Direct,
        }
    }

    /// Environment backed by real scratch files.
    pub fn on_disk(rank: usize) -> Result<Self, IoError> {
        Ok(OocEnv {
            rank,
            disk: LogicalDisk::on_disk(&format!("rank{rank}"))?,
            files: HashMap::new(),
            sieve: pario::SievePolicy::Direct,
        })
    }

    /// Service strided section reads by data sieving according to `policy`
    /// (PASSION-style: one spanning request, unwanted bytes discarded).
    pub fn set_sieve_policy(&mut self, policy: pario::SievePolicy) {
        self.sieve = policy;
    }

    /// The sieve policy currently in force (so callers can save/restore it
    /// around a method-forced access).
    pub fn sieve_policy(&self) -> pario::SievePolicy {
        self.sieve
    }

    /// Put a slab reuse cache of `budget` bytes in front of this
    /// processor's logical disk. Section reads covered by cached slabs are
    /// free; section writes are buffered until eviction or
    /// [`OocEnv::flush_cache`]. Enable only after uncharged setup
    /// (allocation, `load_global`) so the cache starts cold with the
    /// measured region.
    pub fn enable_cache(&mut self, budget: usize) {
        self.disk.enable_cache(budget);
    }

    /// True when a slab cache is active on the logical disk.
    pub fn cache_enabled(&self) -> bool {
        self.disk.cache_enabled()
    }

    /// Write back all dirty cached slabs, charging the write-backs to
    /// `charge`. Call after each plan so buffered output reaches the LAFs
    /// before anything else reads them uncached.
    pub fn flush_cache(&mut self, charge: &dyn IoCharge) -> Result<(), IoError> {
        self.disk.flush_cache(charge)
    }

    /// Enable deterministic fault injection on this processor's logical
    /// disk. The injector draws from a per-rank stream derived from
    /// `cfg.seed`, so two runs with the same config see the same fault
    /// schedule. A quiet config (all probabilities zero) leaves every
    /// request bit-identical to a fault-free environment.
    pub fn enable_faults(&mut self, cfg: &dmsim::FaultConfig) {
        self.disk.enable_faults(cfg, self.rank);
    }

    /// Like [`OocEnv::enable_faults`] but for workload job `job`: the fate
    /// stream is derived from the (job, rank) pair, so concurrent jobs in a
    /// shared-farm workload keep independent fault schedules. Job 0
    /// reproduces the legacy per-rank streams bit-for-bit.
    pub fn enable_faults_for_job(&mut self, cfg: &dmsim::FaultConfig, job: u32) {
        self.disk.enable_faults_for_job(cfg, job, self.rank);
    }

    /// Clear any armed permanent faults so a checkpoint/restart recovery
    /// pass can re-issue the failed accesses. Transient fault probabilities
    /// stay active. No-op without an injector.
    pub fn quiesce_faults(&self) {
        if let Some(fi) = self.disk.fault_injector() {
            fi.quiesce_hard();
        }
    }

    /// True once the fault layer has injected enough disk faults to mark
    /// this disk degraded; executors should re-plan slab sizes against
    /// reduced I/O bandwidth.
    pub fn disk_degraded(&self) -> bool {
        self.disk.is_degraded()
    }

    /// Bandwidth derating factor the cost model should apply once
    /// [`OocEnv::disk_degraded`] reports true (1.0 without an injector).
    pub fn degrade_factor(&self) -> f64 {
        self.disk
            .fault_injector()
            .map_or(1.0, |fi| fi.degrade_factor())
    }

    /// This environment's processor rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The underlying logical disk (for stats inspection).
    pub fn disk(&self) -> &LogicalDisk {
        &self.disk
    }

    /// Allocate the LAF for `desc` on this processor. Idempotent per id.
    pub fn alloc(&mut self, desc: &ArrayDesc) -> Result<(), IoError> {
        if self.files.contains_key(&desc.id) {
            return Ok(());
        }
        let len = desc.local_shape(self.rank).len() as u64;
        let laf = LocalArrayFile::create(&mut self.disk, desc.elem, len)?;
        self.files.insert(desc.id, laf);
        Ok(())
    }

    fn laf(&self, id: ArrayId) -> LocalArrayFile {
        *self
            .files
            .get(&id)
            .unwrap_or_else(|| panic!("array {id:?} not allocated on rank {}", self.rank))
    }

    /// Read a section of the OCLA (local index space) into a fresh ICLA
    /// buffer in section column-major order. I/O is charged to `charge`.
    pub fn read_section(
        &mut self,
        desc: &ArrayDesc,
        section: &Section,
        charge: &dyn IoCharge,
    ) -> Result<Vec<f32>, IoError> {
        let local_shape = desc.local_shape(self.rank);
        let runs = desc.layout.section_runs(&local_shape, section);
        let laf = self.laf(desc.id);
        charge.io_array(&desc.name, laf.file_id().0);
        self.disk.note_array(laf.file_id(), &desc.name);
        let raw = laf.read_f32_with(&mut self.disk, &runs, charge, self.sieve)?;
        Ok(reorder_layout_to_cm(&desc.layout, section, raw))
    }

    /// Write an ICLA buffer (section column-major order) into a section of
    /// the OCLA. I/O is charged to `charge`.
    pub fn write_section(
        &mut self,
        desc: &ArrayDesc,
        section: &Section,
        data: &[f32],
        charge: &dyn IoCharge,
    ) -> Result<(), IoError> {
        assert_eq!(data.len(), section.len(), "ICLA buffer/section mismatch");
        let local_shape = desc.local_shape(self.rank);
        let runs = desc.layout.section_runs(&local_shape, section);
        let raw = reorder_cm_to_layout(&desc.layout, section, data);
        let laf = self.laf(desc.id);
        charge.io_array(&desc.name, laf.file_id().0);
        self.disk.note_array(laf.file_id(), &desc.name);
        laf.write_f32_with(&mut self.disk, &runs, &raw, charge, self.sieve)
    }

    /// Read raw byte runs of `desc`'s LAF, one request per coalesced run,
    /// bypassing the section/reorder machinery. This is the service read of
    /// the two-phase collective path: the runs are the *file-conforming
    /// union* of several pieces, already coalesced by the union planner, so
    /// sieving never applies. Bytes come back concatenated in run order.
    pub fn read_byte_runs(
        &mut self,
        desc: &ArrayDesc,
        runs: &[pario::ByteRun],
        charge: &dyn IoCharge,
    ) -> Result<Vec<u8>, IoError> {
        let laf = self.laf(desc.id);
        charge.io_array(&desc.name, laf.file_id().0);
        self.disk.note_array(laf.file_id(), &desc.name);
        let mut out = Vec::with_capacity(runs.iter().map(|r| r.len as usize).sum());
        self.disk.read_runs(laf.file_id(), runs, &mut out, charge)?;
        Ok(out)
    }

    /// Populate the whole OCLA from a global-index generator function —
    /// model of the initial distribution of data onto the local array files.
    /// Not charged (the paper amortizes this setup).
    pub fn load_global(
        &mut self,
        desc: &ArrayDesc,
        f: &dyn Fn(&[usize]) -> f32,
    ) -> Result<(), IoError> {
        let local_shape = desc.local_shape(self.rank);
        let ndims = local_shape.ndims();
        let total = local_shape.len();
        // Precompute per-dimension local -> global maps so the fill loop is
        // allocation-free (this runs once per element of every array).
        let coords = desc.dist.grid().coords(self.rank);
        let maps: Vec<Vec<usize>> = (0..ndims)
            .map(|d| {
                let coord = match desc.dist.dims()[d] {
                    crate::dist::DimDist::Collapsed => 0,
                    crate::dist::DimDist::Distributed { axis, .. } => coords[axis],
                };
                (0..local_shape.extent(d))
                    .map(|l| desc.dist.global_index(d, coord, l))
                    .collect()
            })
            .collect();
        let order = desc.layout.order().to_vec();
        let mut idx = vec![0usize; ndims];
        let mut g = vec![0usize; ndims];
        let mut buf = Vec::with_capacity(total);
        for _ in 0..total {
            for d in 0..ndims {
                g[d] = maps[d][idx[d]];
            }
            buf.push(f(&g));
            for &d in &order {
                idx[d] += 1;
                if idx[d] < local_shape.extent(d) {
                    break;
                }
                idx[d] = 0;
            }
        }
        let laf = self.laf(desc.id);
        laf.write_all_f32(&mut self.disk, &buf, &NoCharge)
    }

    /// Read the whole OCLA in *local column-major* order (for verification;
    /// not charged).
    pub fn read_local_all(&mut self, desc: &ArrayDesc) -> Result<Vec<f32>, IoError> {
        let local_shape = desc.local_shape(self.rank);
        self.read_section_uncharged(desc, &Section::full(&local_shape))
    }

    /// Read a section without charging (setup/verification).
    pub fn read_section_uncharged(
        &mut self,
        desc: &ArrayDesc,
        section: &Section,
    ) -> Result<Vec<f32>, IoError> {
        self.read_section(desc, section, &NoCharge)
    }
}

/// Reorder a buffer delivered in `layout` order of `section` into section
/// column-major order.
pub(crate) fn reorder_layout_to_cm(
    layout: &FileLayout,
    section: &Section,
    raw: Vec<f32>,
) -> Vec<f32> {
    if layout_is_cm(layout) {
        return raw;
    }
    let mut out = vec![0.0f32; raw.len()];
    for (k, cm) in LayoutCmMap::new(layout, section).enumerate() {
        out[cm] = raw[k];
    }
    out
}

/// Reorder a section-column-major buffer into `layout` order for writing.
/// Borrows the input unchanged when the layout already is column-major.
pub(crate) fn reorder_cm_to_layout<'a>(
    layout: &FileLayout,
    section: &Section,
    data: &'a [f32],
) -> std::borrow::Cow<'a, [f32]> {
    if layout_is_cm(layout) {
        return std::borrow::Cow::Borrowed(data);
    }
    let mut out = vec![0.0f32; data.len()];
    for (k, cm) in LayoutCmMap::new(layout, section).enumerate() {
        out[k] = data[cm];
    }
    std::borrow::Cow::Owned(out)
}

fn layout_is_cm(layout: &FileLayout) -> bool {
    layout.order().iter().enumerate().all(|(i, &d)| i == d)
}

/// Iterator yielding, for each position `k` in layout order, the position of
/// the same element in section column-major order. Allocation-free
/// odometer.
struct LayoutCmMap {
    counts: Vec<usize>,     // per layout position
    cm_strides: Vec<usize>, // per layout position (stride in CM of that dim)
    odo: Vec<usize>,
    cm_pos: usize,
    remaining: usize,
    first: bool,
}

impl LayoutCmMap {
    fn new(layout: &FileLayout, section: &Section) -> Self {
        let sec_shape = section.shape();
        let sec_strides = sec_shape.strides();
        let counts: Vec<usize> = layout
            .order()
            .iter()
            .map(|&d| section.range(d).len())
            .collect();
        let cm_strides: Vec<usize> = layout.order().iter().map(|&d| sec_strides[d]).collect();
        let remaining = counts.iter().product();
        LayoutCmMap {
            odo: vec![0; counts.len()],
            counts,
            cm_strides,
            cm_pos: 0,
            remaining,
            first: true,
        }
    }
}

impl Iterator for LayoutCmMap {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        if self.first {
            self.first = false;
            self.remaining -= 1;
            return Some(self.cm_pos);
        }
        for pos in 0..self.counts.len() {
            self.odo[pos] += 1;
            self.cm_pos += self.cm_strides[pos];
            if self.odo[pos] < self.counts[pos] {
                self.remaining -= 1;
                return Some(self.cm_pos);
            }
            self.cm_pos -= self.counts[pos] * self.cm_strides[pos];
            self.odo[pos] = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::section::DimRange;

    fn desc_col_block(n: usize, p: usize, layout: FileLayout) -> ArrayDesc {
        ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(n, n), p),
        )
        .with_layout(layout)
    }

    #[test]
    fn load_and_read_back_cm_layout() {
        let desc = desc_col_block(8, 2, FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(1);
        env.alloc(&desc).unwrap();
        // Global value = 100*row + col.
        env.load_global(&desc, &|g| (100 * g[0] + g[1]) as f32)
            .unwrap();
        // Rank 1 owns columns 4..8. Read local column 1 (global col 5).
        let s = Section::new(vec![DimRange::full(8), DimRange::single(1)]);
        let col = env.read_section_uncharged(&desc, &s).unwrap();
        let expect: Vec<f32> = (0..8).map(|r| (100 * r + 5) as f32).collect();
        assert_eq!(col, expect);
    }

    #[test]
    fn icla_order_is_layout_independent() {
        // The same section must come back identical under any file layout.
        for layout in [FileLayout::column_major(2), FileLayout::row_major(2)] {
            let desc = desc_col_block(6, 3, layout);
            let mut env = OocEnv::in_memory(2);
            env.alloc(&desc).unwrap();
            env.load_global(&desc, &|g| (10 * g[0] + g[1]) as f32)
                .unwrap();
            let s = Section::new(vec![DimRange::new(1, 4), DimRange::new(0, 2)]);
            let buf = env.read_section_uncharged(&desc, &s).unwrap();
            // Section CM order: rows fastest. Rank 2 owns global cols 4..6.
            let expect: Vec<f32> = vec![
                (10 + 4) as f32,
                (10 * 2 + 4) as f32,
                (10 * 3 + 4) as f32,
                (10 + 5) as f32,
                (10 * 2 + 5) as f32,
                (10 * 3 + 5) as f32,
            ];
            assert_eq!(buf, expect, "layout changed ICLA contents");
        }
    }

    #[test]
    fn write_then_read_roundtrip_any_layout() {
        for layout in [FileLayout::column_major(2), FileLayout::row_major(2)] {
            let desc = desc_col_block(8, 2, layout);
            let mut env = OocEnv::in_memory(0);
            env.alloc(&desc).unwrap();
            let s = Section::new(vec![DimRange::new(2, 5), DimRange::new(1, 4)]);
            let data: Vec<f32> = (0..s.len()).map(|i| i as f32 * 1.5).collect();
            env.write_section(&desc, &s, &data, &NoCharge).unwrap();
            let back = env.read_section_uncharged(&desc, &s).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn io_request_counts_depend_on_layout() {
        let n = 16;
        let row_slab = Section::new(vec![DimRange::new(0, 2), DimRange::full(n)]);
        // Column-major file: a row slab is n strided runs.
        let cm = desc_col_block(n, 1, FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&cm).unwrap();
        let _ = env.read_section_uncharged(&cm, &row_slab).unwrap();
        assert_eq!(env.disk().stats().read_requests, n as u64);
        // Row-major file: one run.
        let rm = desc_col_block(n, 1, FileLayout::row_major(2));
        let mut env2 = OocEnv::in_memory(0);
        env2.alloc(&rm).unwrap();
        let _ = env2.read_section_uncharged(&rm, &row_slab).unwrap();
        assert_eq!(env2.disk().stats().read_requests, 1);
    }

    #[test]
    fn sieving_trades_requests_for_bytes() {
        let n = 16;
        // Row slab of a column-major file: n strided runs of 2 elements.
        let row_slab = Section::new(vec![DimRange::new(4, 6), DimRange::full(n)]);
        let desc = desc_col_block(n, 1, FileLayout::column_major(2));

        let mut direct = OocEnv::in_memory(0);
        direct.alloc(&desc).unwrap();
        direct
            .load_global(&desc, &|g| (g[0] * 100 + g[1]) as f32)
            .unwrap();
        let want = direct.read_section_uncharged(&desc, &row_slab).unwrap();
        let direct_stats = direct.disk().stats();

        let mut sieved = OocEnv::in_memory(0);
        sieved.alloc(&desc).unwrap();
        sieved
            .load_global(&desc, &|g| (g[0] * 100 + g[1]) as f32)
            .unwrap();
        sieved.set_sieve_policy(pario::SievePolicy::Always);
        let got = sieved.read_section_uncharged(&desc, &row_slab).unwrap();
        let sieved_stats = sieved.disk().stats();

        assert_eq!(got, want, "sieving must not change the data");
        assert_eq!(direct_stats.read_requests, n as u64);
        assert_eq!(sieved_stats.read_requests, 1);
        assert!(sieved_stats.bytes_read > direct_stats.bytes_read);
    }

    #[test]
    fn cached_reads_hit_and_writes_buffer() {
        let desc = desc_col_block(8, 2, FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&desc).unwrap();
        env.load_global(&desc, &|g| (g[0] * 10 + g[1]) as f32)
            .unwrap();
        env.enable_cache(1 << 16);
        assert!(env.cache_enabled());
        let s = Section::new(vec![DimRange::full(8), DimRange::new(0, 2)]);
        let first = env.read_section_uncharged(&desc, &s).unwrap();
        let base = env.disk().stats();
        let second = env.read_section_uncharged(&desc, &s).unwrap();
        assert_eq!(first, second, "cache must not change section contents");
        let after = env.disk().stats();
        assert_eq!(after.read_requests, base.read_requests, "repeat read hits");
        assert_eq!(after.cache_hits, base.cache_hits + 1);
        // Writes buffer until flushed and stay visible to reads meanwhile.
        // (`load_global` already issued one uncached setup write.)
        let writes_before = env.disk().stats().write_requests;
        let data: Vec<f32> = (0..s.len()).map(|i| i as f32).collect();
        env.write_section(&desc, &s, &data, &NoCharge).unwrap();
        assert_eq!(env.disk().stats().write_requests, writes_before);
        let back = env.read_section_uncharged(&desc, &s).unwrap();
        assert_eq!(back, data);
        env.flush_cache(&NoCharge).unwrap();
        assert_eq!(env.disk().stats().write_requests, writes_before + 1);
        assert_eq!(env.disk().stats().write_back_requests, 1);
    }

    #[test]
    fn alloc_is_idempotent() {
        let desc = desc_col_block(4, 2, FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&desc).unwrap();
        env.alloc(&desc).unwrap();
        assert_eq!(env.rank(), 0);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn unallocated_array_panics() {
        let desc = desc_col_block(4, 2, FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        let _ = env.read_local_all(&desc);
    }
}
