//! Combined error type for runtime operations that both touch the local
//! disk and talk to other processors (redistribution, executor steps).
//!
//! The fault-injection subsystem threads failures out of both substrates:
//! [`pario::IoError`] carries disk faults (including permanent ones that
//! survive the retry policy), [`dmsim::CommError`] carries communication
//! failures (a disconnected peer — typically a rank that died on a
//! permanent fault of its own). Recovery logic matches on the variant to
//! pick a strategy: checkpoint/restart for permanent I/O faults, a
//! coordinated re-run for lost peers.

use std::fmt;

use dmsim::CommError;
use pario::IoError;

/// A runtime step failed in the I/O or the communication substrate.
#[derive(Debug)]
pub enum OocError {
    /// A local-disk operation failed.
    Io(IoError),
    /// A communication operation failed.
    Comm(CommError),
}

impl OocError {
    /// True when the failure is recoverable by checkpoint/restart: a
    /// permanent disk fault on this rank, or a peer lost mid-collective
    /// (the peer's own permanent fault unwinding through the fabric).
    pub fn is_recoverable(&self) -> bool {
        match self {
            OocError::Io(e) => matches!(e, IoError::PermanentFault { .. }),
            OocError::Comm(_) => true,
        }
    }

    /// True when the failure is a permanent disk death
    /// ([`IoError::DiskDown`]): no local retry or same-disk
    /// checkpoint/restart helps — the workload layer must re-plan the job
    /// onto surviving disks.
    pub fn is_disk_down(&self) -> bool {
        matches!(self, OocError::Io(IoError::DiskDown { .. }))
    }
}

impl fmt::Display for OocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OocError::Io(e) => write!(f, "I/O error: {e}"),
            OocError::Comm(e) => write!(f, "communication error: {e}"),
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocError::Io(e) => Some(e),
            OocError::Comm(e) => Some(e),
        }
    }
}

impl From<IoError> for OocError {
    fn from(e: IoError) -> Self {
        OocError::Io(e)
    }
}

impl From<CommError> for OocError {
    fn from(e: CommError) -> Self {
        OocError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recoverability_matches_the_taxonomy() {
        let hard: OocError = IoError::PermanentFault {
            file: 0,
            offset: 0,
            op: pario::FaultOp::Read,
        }
        .into();
        assert!(hard.is_recoverable());
        let soft: OocError = IoError::NoSuchFile { file: 1 }.into();
        assert!(!soft.is_recoverable());
        let dead: OocError = IoError::DiskDown { file: 2 }.into();
        assert!(!dead.is_recoverable(), "a dead disk cannot be restarted");
        assert!(dead.is_disk_down());
        assert!(!hard.is_disk_down());
        let comm: OocError = CommError::Recv(dmsim::RecvError::Disconnected { from: 2 }).into();
        assert!(comm.is_recoverable());
        assert!(hard.to_string().contains("permanent"));
    }
}
