//! Persistence of out-of-core arrays to ordinary files.
//!
//! §2.3 of the paper: data first arrives "from archival storage, satellite
//! or over the network" and is then (re)distributed into local array files.
//! This module is that boundary: each rank's local part is exported to (or
//! imported from) one file under a shared directory, with a small
//! self-describing header. Contents are stored in local column-major order,
//! so files are portable across file-layout choices (a re-imported array
//! may be stored with a different on-disk layout than it was exported
//! from) — but *not* across distributions or processor counts, which the
//! header checks.

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::ocla::{ArrayDesc, OocEnv};
use crate::section::Section;
use pario::{bytes_to_f32, f32_to_bytes, IoError};

const MAGIC: &str = "oochpf-laf 1";

/// File path for one rank's part of `desc` under `dir`.
pub fn rank_file(dir: &Path, desc: &ArrayDesc, rank: usize) -> PathBuf {
    dir.join(format!("{}.r{rank}.laf", desc.name))
}

fn header(desc: &ArrayDesc, rank: usize) -> String {
    let global: Vec<String> = desc
        .global_shape()
        .extents()
        .iter()
        .map(|e| e.to_string())
        .collect();
    let local: Vec<String> = desc
        .local_shape(rank)
        .extents()
        .iter()
        .map(|e| e.to_string())
        .collect();
    format!(
        "{MAGIC}\nname={} rank={rank} nprocs={} global={} local={}\n",
        desc.name,
        desc.dist.nprocs(),
        global.join("x"),
        local.join("x"),
    )
}

/// Export this rank's local part of `desc` to `dir` (created if missing).
pub fn export_array(env: &mut OocEnv, desc: &ArrayDesc, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    let rank = env.rank();
    let data = env.read_local_all(desc)?;
    let mut f = fs::File::create(rank_file(dir, desc, rank))?;
    f.write_all(header(desc, rank).as_bytes())?;
    f.write_all(&f32_to_bytes(&data))?;
    Ok(())
}

/// Import this rank's local part of `desc` from `dir`, overwriting the LAF.
/// The file's header must match the descriptor's name, rank, processor
/// count and shapes.
pub fn import_array(env: &mut OocEnv, desc: &ArrayDesc, dir: &Path) -> Result<(), IoError> {
    let rank = env.rank();
    let path = rank_file(dir, desc, rank);
    let mut f = fs::File::open(&path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;

    let expect = header(desc, rank);
    if bytes.len() < expect.len() || &bytes[..expect.len()] != expect.as_bytes() {
        let got = String::from_utf8_lossy(&bytes[..bytes.len().min(expect.len())]).into_owned();
        return Err(IoError::Backend(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{} does not match this array: expected header {expect:?}, found {got:?}",
                path.display()
            ),
        )));
    }
    let data = bytes_to_f32(&bytes[expect.len()..])?;
    let local_shape = desc.local_shape(rank);
    if data.len() != local_shape.len() {
        return Err(IoError::Backend(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: payload holds {} elements, local part needs {}",
                path.display(),
                data.len(),
                local_shape.len()
            ),
        )));
    }
    env.write_section(desc, &Section::full(&local_shape), &data, &pario::NoCharge)
}

const CKPT_MAGIC: &str = "oochpf-ckpt 1";

/// File path for one rank's checkpoint of stage `tag` under `dir`.
pub fn checkpoint_file(dir: &Path, tag: &str, rank: usize) -> PathBuf {
    dir.join(format!("{tag}.r{rank}.ckpt"))
}

fn ckpt_header(tag: &str, rank: usize, progress: u64, elems: usize) -> String {
    format!("{CKPT_MAGIC}\ntag={tag} rank={rank} progress={progress} elems={elems}\n")
}

/// Checkpoint one section of `desc` (slab granularity) together with a
/// `progress` marker saying how far the computation has advanced. The file
/// is written to a temporary name and renamed into place, so a crash midway
/// never leaves a half-valid checkpoint — restore sees either the previous
/// complete checkpoint or none.
pub fn checkpoint_section(
    env: &mut OocEnv,
    desc: &ArrayDesc,
    section: &Section,
    dir: &Path,
    tag: &str,
    progress: u64,
) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    let rank = env.rank();
    let data = env.read_section_uncharged(desc, section)?;
    let path = checkpoint_file(dir, tag, rank);
    let tmp = path.with_extension("ckpt.tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(ckpt_header(tag, rank, progress, data.len()).as_bytes())?;
    f.write_all(&f32_to_bytes(&data))?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &path)?;
    Ok(())
}

/// Restore a checkpoint written by [`checkpoint_section`], writing the
/// payload back into `section` of `desc`. Returns the saved `progress`
/// marker, or `Ok(None)` when no usable checkpoint exists (missing file or
/// header mismatch) — the caller then restarts the stage from scratch, which
/// is always safe.
pub fn restore_checkpoint(
    env: &mut OocEnv,
    desc: &ArrayDesc,
    section: &Section,
    dir: &Path,
    tag: &str,
) -> Result<Option<u64>, IoError> {
    let rank = env.rank();
    let path = checkpoint_file(dir, tag, rank);
    let mut bytes = Vec::new();
    match fs::File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut bytes).map(|_| ())?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    // Parse "magic\ntag=... rank=... progress=P elems=N\n".
    let Some(head_end) = bytes.iter().position(|&b| b == b'\n').and_then(|first| {
        bytes[first + 1..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|s| first + 1 + s + 1)
    }) else {
        return Ok(None);
    };
    let head = match std::str::from_utf8(&bytes[..head_end]) {
        Ok(h) => h,
        Err(_) => return Ok(None),
    };
    let mut lines = head.lines();
    if lines.next() != Some(CKPT_MAGIC) {
        return Ok(None);
    }
    let fields = lines.next().unwrap_or("");
    let mut progress = None;
    let mut elems = None;
    let mut tag_ok = false;
    let mut rank_ok = false;
    for field in fields.split_whitespace() {
        match field.split_once('=') {
            Some(("tag", v)) => tag_ok = v == tag,
            Some(("rank", v)) => rank_ok = v.parse::<usize>() == Ok(rank),
            Some(("progress", v)) => progress = v.parse::<u64>().ok(),
            Some(("elems", v)) => elems = v.parse::<usize>().ok(),
            _ => {}
        }
    }
    let (Some(progress), Some(elems)) = (progress, elems) else {
        return Ok(None);
    };
    if !tag_ok || !rank_ok || elems != section.len() {
        return Ok(None);
    }
    let Ok(data) = bytes_to_f32(&bytes[head_end..]) else {
        return Ok(None);
    };
    if data.len() != elems {
        return Ok(None);
    }
    env.write_section(desc, section, &data, &pario::NoCharge)?;
    Ok(Some(progress))
}

/// Delete one rank's checkpoint of stage `tag`, if present (call once the
/// stage has committed).
pub fn remove_checkpoint(dir: &Path, tag: &str, rank: usize) -> Result<(), IoError> {
    match fs::remove_file(checkpoint_file(dir, tag, rank)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::layout::FileLayout;
    use crate::ocla::ArrayId;
    use crate::shape::Shape;
    use pario::ElemKind;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_N: AtomicU64 = AtomicU64::new(0);

    fn scratch() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ooc-persist-{}-{}",
            std::process::id(),
            DIR_N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn desc(layout: FileLayout) -> ArrayDesc {
        ArrayDesc::new(
            ArrayId(0),
            "x",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(8, 6), 2),
        )
        .with_layout(layout)
    }

    #[test]
    fn export_import_roundtrip_across_layouts() {
        let dir = scratch();
        // Export from a column-major env…
        let d_cm = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(1);
        env.alloc(&d_cm).unwrap();
        env.load_global(&d_cm, &|g| (g[0] * 100 + g[1]) as f32)
            .unwrap();
        export_array(&mut env, &d_cm, &dir).unwrap();
        let original = env.read_local_all(&d_cm).unwrap();

        // …import into a row-major env: contents must be identical.
        let d_rm = desc(FileLayout::row_major(2));
        let mut env2 = OocEnv::in_memory(1);
        env2.alloc(&d_rm).unwrap();
        import_array(&mut env2, &d_rm, &dir).unwrap();
        assert_eq!(env2.read_local_all(&d_rm).unwrap(), original);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let dir = scratch();
        let d = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&d).unwrap();
        export_array(&mut env, &d, &dir).unwrap();

        // Same name, different global shape -> header mismatch.
        let other = ArrayDesc::new(
            ArrayId(0),
            "x",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(8, 8), 2),
        );
        let mut env2 = OocEnv::in_memory(0);
        env2.alloc(&other).unwrap();
        let err = import_array(&mut env2, &other, &dir).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_roundtrip_restores_payload_and_progress() {
        let dir = scratch();
        let d = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(1);
        env.alloc(&d).unwrap();
        env.load_global(&d, &|g| (g[0] * 10 + g[1]) as f32).unwrap();
        let local = d.local_shape(1);
        let sec = Section::full(&local);
        checkpoint_section(&mut env, &d, &sec, &dir, "gaxpy-y", 3).unwrap();
        let saved = env.read_local_all(&d).unwrap();

        // Clobber the array, then restore: payload and progress come back.
        let zeros = vec![0.0f32; local.len()];
        env.write_section(&d, &sec, &zeros, &pario::NoCharge)
            .unwrap();
        let progress = restore_checkpoint(&mut env, &d, &sec, &dir, "gaxpy-y").unwrap();
        assert_eq!(progress, Some(3));
        assert_eq!(env.read_local_all(&d).unwrap(), saved);

        // After removal the stage restarts from scratch.
        remove_checkpoint(&dir, "gaxpy-y", 1).unwrap();
        assert_eq!(
            restore_checkpoint(&mut env, &d, &sec, &dir, "gaxpy-y").unwrap(),
            None
        );
        remove_checkpoint(&dir, "gaxpy-y", 1).unwrap(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_checkpoint_is_ignored_not_fatal() {
        let dir = scratch();
        let d = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&d).unwrap();
        let local = d.local_shape(0);
        let sec = Section::full(&local);
        checkpoint_section(&mut env, &d, &sec, &dir, "stage", 1).unwrap();
        // Wrong tag -> treated as no checkpoint.
        assert_eq!(
            restore_checkpoint(&mut env, &d, &sec, &dir, "other").unwrap(),
            None
        );
        // Truncated file -> treated as no checkpoint, not a parse panic.
        let path = checkpoint_file(&dir, "stage", 0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(
            restore_checkpoint(&mut env, &d, &sec, &dir, "stage").unwrap(),
            None
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = scratch();
        let d = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&d).unwrap();
        assert!(import_array(&mut env, &d, &dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
