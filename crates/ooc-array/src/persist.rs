//! Persistence of out-of-core arrays to ordinary files.
//!
//! §2.3 of the paper: data first arrives "from archival storage, satellite
//! or over the network" and is then (re)distributed into local array files.
//! This module is that boundary: each rank's local part is exported to (or
//! imported from) one file under a shared directory, with a small
//! self-describing header. Contents are stored in local column-major order,
//! so files are portable across file-layout choices (a re-imported array
//! may be stored with a different on-disk layout than it was exported
//! from) — but *not* across distributions or processor counts, which the
//! header checks.

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::ocla::{ArrayDesc, OocEnv};
use crate::section::Section;
use pario::{bytes_to_f32, f32_to_bytes, IoError};

const MAGIC: &str = "oochpf-laf 1";

/// File path for one rank's part of `desc` under `dir`.
pub fn rank_file(dir: &Path, desc: &ArrayDesc, rank: usize) -> PathBuf {
    dir.join(format!("{}.r{rank}.laf", desc.name))
}

fn header(desc: &ArrayDesc, rank: usize) -> String {
    let global: Vec<String> = desc
        .global_shape()
        .extents()
        .iter()
        .map(|e| e.to_string())
        .collect();
    let local: Vec<String> = desc
        .local_shape(rank)
        .extents()
        .iter()
        .map(|e| e.to_string())
        .collect();
    format!(
        "{MAGIC}\nname={} rank={rank} nprocs={} global={} local={}\n",
        desc.name,
        desc.dist.nprocs(),
        global.join("x"),
        local.join("x"),
    )
}

/// Export this rank's local part of `desc` to `dir` (created if missing).
pub fn export_array(env: &mut OocEnv, desc: &ArrayDesc, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    let rank = env.rank();
    let data = env.read_local_all(desc)?;
    let mut f = fs::File::create(rank_file(dir, desc, rank))?;
    f.write_all(header(desc, rank).as_bytes())?;
    f.write_all(&f32_to_bytes(&data))?;
    Ok(())
}

/// Import this rank's local part of `desc` from `dir`, overwriting the LAF.
/// The file's header must match the descriptor's name, rank, processor
/// count and shapes.
pub fn import_array(env: &mut OocEnv, desc: &ArrayDesc, dir: &Path) -> Result<(), IoError> {
    let rank = env.rank();
    let path = rank_file(dir, desc, rank);
    let mut f = fs::File::open(&path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;

    let expect = header(desc, rank);
    if bytes.len() < expect.len() || &bytes[..expect.len()] != expect.as_bytes() {
        let got = String::from_utf8_lossy(&bytes[..bytes.len().min(expect.len())]).into_owned();
        return Err(IoError::Backend(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{} does not match this array: expected header {expect:?}, found {got:?}",
                path.display()
            ),
        )));
    }
    let data = bytes_to_f32(&bytes[expect.len()..])?;
    let local_shape = desc.local_shape(rank);
    if data.len() != local_shape.len() {
        return Err(IoError::Backend(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "{}: payload holds {} elements, local part needs {}",
                path.display(),
                data.len(),
                local_shape.len()
            ),
        )));
    }
    env.write_section(desc, &Section::full(&local_shape), &data, &pario::NoCharge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::layout::FileLayout;
    use crate::ocla::ArrayId;
    use crate::shape::Shape;
    use pario::ElemKind;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_N: AtomicU64 = AtomicU64::new(0);

    fn scratch() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ooc-persist-{}-{}",
            std::process::id(),
            DIR_N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn desc(layout: FileLayout) -> ArrayDesc {
        ArrayDesc::new(
            ArrayId(0),
            "x",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(8, 6), 2),
        )
        .with_layout(layout)
    }

    #[test]
    fn export_import_roundtrip_across_layouts() {
        let dir = scratch();
        // Export from a column-major env…
        let d_cm = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(1);
        env.alloc(&d_cm).unwrap();
        env.load_global(&d_cm, &|g| (g[0] * 100 + g[1]) as f32)
            .unwrap();
        export_array(&mut env, &d_cm, &dir).unwrap();
        let original = env.read_local_all(&d_cm).unwrap();

        // …import into a row-major env: contents must be identical.
        let d_rm = desc(FileLayout::row_major(2));
        let mut env2 = OocEnv::in_memory(1);
        env2.alloc(&d_rm).unwrap();
        import_array(&mut env2, &d_rm, &dir).unwrap();
        assert_eq!(env2.read_local_all(&d_rm).unwrap(), original);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let dir = scratch();
        let d = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&d).unwrap();
        export_array(&mut env, &d, &dir).unwrap();

        // Same name, different global shape -> header mismatch.
        let other = ArrayDesc::new(
            ArrayId(0),
            "x",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(8, 8), 2),
        );
        let mut env2 = OocEnv::in_memory(0);
        env2.alloc(&other).unwrap();
        let err = import_array(&mut env2, &other, &dir).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = scratch();
        let d = desc(FileLayout::column_major(2));
        let mut env = OocEnv::in_memory(0);
        env.alloc(&d).unwrap();
        assert!(import_array(&mut env, &d, &dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
