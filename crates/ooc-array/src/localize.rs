//! Localization: translating between global and local index spaces.
//!
//! These are the "in-core phase" primitives of the compilation flow chart
//! (Figure 7): computing local bounds for each processor from the global
//! iteration space, and finding owners of produced values.

use crate::dist::{DimDist, DistKind, Distribution};
use crate::section::{DimRange, Section};
use crate::shape::Shape;

/// Rank of the processor owning the element at `index`.
pub fn owner_of(dist: &Distribution, index: &[usize]) -> usize {
    dist.owner(index)
}

/// Shape of the out-of-core local array of `rank` — the OCLA extents.
pub fn local_part(dist: &Distribution, rank: usize) -> Shape {
    dist.local_shape(rank)
}

/// Restrict a *global* section to the part owned by `rank`, expressed in
/// *local* indices. Returns `None` when the processor owns nothing of it.
///
/// Exact for block, cyclic and collapsed dimensions; block-cyclic
/// distributions do not produce regular local sections and return `None`
/// (callers fall back to element-wise transfer).
pub fn local_section_of_global(
    dist: &Distribution,
    rank: usize,
    global: &Section,
) -> Option<Section> {
    assert_eq!(global.ndims(), dist.global().ndims(), "rank mismatch");
    let coords = dist.grid().coords(rank);
    let mut local = Vec::with_capacity(global.ndims());
    for d in 0..global.ndims() {
        let owned = match dist.dims()[d] {
            DimDist::Collapsed => DimRange::new(0, dist.global().extent(d)),
            DimDist::Distributed { axis, .. } => dist.owned_range(d, coords[axis])?,
        };
        let isect = owned.intersect(&global.range(d))?;
        local.push(global_range_to_local(dist, d, &coords, isect)?);
    }
    Some(Section::new(local))
}

fn global_range_to_local(
    dist: &Distribution,
    d: usize,
    coords: &[usize],
    r: DimRange,
) -> Option<DimRange> {
    match dist.dims()[d] {
        DimDist::Collapsed => Some(r),
        DimDist::Distributed { kind, axis } => {
            let coord = coords[axis];
            let p = dist.grid().extent(axis);
            match kind {
                DistKind::Block => {
                    let base = dist.global_index(d, coord, 0);
                    Some(DimRange::strided(r.lo - base, r.hi - base, r.step))
                }
                DistKind::Cyclic => {
                    // Global indices owned here are ≡ coord (mod p); the
                    // intersected range has lo ≡ coord and stride k·p.
                    if !r.step.is_multiple_of(p) && r.len() > 1 {
                        return None;
                    }
                    let lstep = if r.len() > 1 { r.step / p } else { 1 };
                    let llo = (r.lo - coord) / p;
                    let llen = r.len();
                    Some(DimRange::strided(llo, llo + (llen - 1) * lstep + 1, lstep))
                }
                DistKind::BlockCyclic(_) => None,
            }
        }
    }
}

/// The global section corresponding to the whole OCLA of `rank`, when it is
/// regular (block/cyclic/collapsed dimensions).
pub fn global_section_of_local(dist: &Distribution, rank: usize) -> Option<Section> {
    let coords = dist.grid().coords(rank);
    let mut ranges = Vec::with_capacity(dist.global().ndims());
    for d in 0..dist.global().ndims() {
        let r = match dist.dims()[d] {
            DimDist::Collapsed => DimRange::new(0, dist.global().extent(d)),
            DimDist::Distributed { axis, .. } => dist.owned_range(d, coords[axis])?,
        };
        ranges.push(r);
    }
    Some(Section::new(ranges))
}

/// Map a full global multi-index to `(rank, local index)`.
pub fn global_to_local(dist: &Distribution, index: &[usize]) -> (usize, Vec<usize>) {
    let rank = dist.owner(index);
    let local = index
        .iter()
        .enumerate()
        .map(|(d, &g)| dist.local_index(d, g))
        .collect();
    (rank, local)
}

/// Map a local multi-index on `rank` back to the global index.
pub fn local_to_global(dist: &Distribution, rank: usize, local: &[usize]) -> Vec<usize> {
    let coords = dist.grid().coords(rank);
    local
        .iter()
        .enumerate()
        .map(|(d, &l)| match dist.dims()[d] {
            DimDist::Collapsed => l,
            DimDist::Distributed { axis, .. } => dist.global_index(d, coords[axis], l),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::ProcGrid;
    use proptest::prelude::*;

    #[test]
    fn column_block_local_sections() {
        // 8x8 over 4 procs, column-block: proc 2 owns columns 4..6.
        let d = Distribution::column_block(Shape::matrix(8, 8), 4);
        let global = Section::new(vec![DimRange::new(0, 8), DimRange::new(3, 7)]);
        let local = local_section_of_global(&d, 2, &global).unwrap();
        assert_eq!(local.range(0), DimRange::new(0, 8));
        assert_eq!(local.range(1), DimRange::new(0, 2)); // cols 4,5 -> local 0,1
                                                         // Proc 0 owns columns 0..2, disjoint from 3..7.
        assert!(local_section_of_global(&d, 0, &global).is_none());
    }

    #[test]
    fn row_block_local_sections() {
        let d = Distribution::row_block(Shape::matrix(8, 8), 2);
        let global = Section::new(vec![DimRange::new(2, 6), DimRange::single(7)]);
        let p0 = local_section_of_global(&d, 0, &global).unwrap();
        assert_eq!(p0.range(0), DimRange::new(2, 4));
        let p1 = local_section_of_global(&d, 1, &global).unwrap();
        assert_eq!(p1.range(0), DimRange::new(0, 2));
        assert_eq!(p1.range(1), DimRange::single(7));
    }

    #[test]
    fn cyclic_local_sections() {
        let d = Distribution::new(
            Shape::new(vec![10]),
            vec![DimDist::Distributed {
                kind: DistKind::Cyclic,
                axis: 0,
            }],
            ProcGrid::line(3),
        );
        // Global 2..9 on coord 1 (owns 1,4,7): intersection 4,7 -> local 1,2.
        let global = Section::new(vec![DimRange::new(2, 9)]);
        let local = local_section_of_global(&d, 1, &global).unwrap();
        assert_eq!(local.range(0).iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn global_local_roundtrip_pointwise() {
        let d = Distribution::column_block(Shape::matrix(6, 9), 3);
        for idx in Shape::matrix(6, 9).indices() {
            let (rank, local) = global_to_local(&d, &idx);
            let back = local_to_global(&d, rank, &local);
            assert_eq!(back, idx);
        }
    }

    #[test]
    fn whole_local_part_as_global_section() {
        let d = Distribution::row_block(Shape::matrix(10, 4), 3);
        // blocks of 4: proc 2 owns rows 8..10.
        let s = global_section_of_local(&d, 2).unwrap();
        assert_eq!(s.range(0), DimRange::new(8, 10));
        assert_eq!(s.range(1), DimRange::new(0, 4));
        assert_eq!(s.shape(), local_part(&d, 2));
    }

    proptest! {
        #[test]
        fn local_sections_partition_any_global_section(
            n0 in 1usize..12, n1 in 1usize..12, p in 1usize..5,
            lo0 in 0usize..12, len0 in 0usize..12,
            lo1 in 0usize..12, len1 in 0usize..12,
            colblock in proptest::bool::ANY,
        ) {
            let shape = Shape::matrix(n0, n1);
            let dist = if colblock {
                Distribution::column_block(shape.clone(), p)
            } else {
                Distribution::row_block(shape.clone(), p)
            };
            let g = Section::new(vec![
                DimRange::new(lo0.min(n0), (lo0 + len0).min(n0)),
                DimRange::new(lo1.min(n1), (lo1 + len1).min(n1)),
            ]);
            // Each global element of g appears in exactly one local section.
            let mut count = 0usize;
            for rank in 0..p {
                if let Some(local) = local_section_of_global(&dist, rank, &g) {
                    for l in local.indices() {
                        let back = local_to_global(&dist, rank, &l);
                        prop_assert!(g.contains(&back), "{:?} not in section", back);
                        prop_assert_eq!(owner_of(&dist, &back), rank);
                        count += 1;
                    }
                }
            }
            prop_assert_eq!(count, g.len());
        }
    }
}
