//! # ooc-array — the out-of-core array runtime
//!
//! Implements the data model of the paper's §2 and §3.3:
//!
//! * a **global array** is partitioned by an HPF-style [`Distribution`]
//!   (block / cyclic / block-cyclic per dimension over a processor grid)
//!   into **out-of-core local arrays** (OCLAs), one per processor;
//! * each OCLA lives in a **Local Array File** on the owning processor's
//!   logical disk, linearized by a [`FileLayout`] the compiler may choose
//!   (this is the paper's "reorganizing data storage on disks");
//! * computation runs over **in-core local arrays** (ICLAs): memory-sized
//!   **slabs** of the OCLA produced by a [`SlabPlan`] along a chosen
//!   dimension (column slabs vs row slabs in the paper's Figure 11).
//!
//! Index conventions: 0-based, Fortran column-major linearization (dimension
//! 0 varies fastest). The paper's `a(n,n)` is `shape [n, n]` with dimension 0
//! the row index; "column-block" distribution distributes dimension 1.

pub mod dist;
pub mod error;
pub mod irreg;
pub mod layout;
pub mod localize;
pub mod ocla;
pub mod persist;
pub mod redist;
pub mod section;
pub mod shape;
pub mod slab;

pub use dist::{DimDist, DistKind, Distribution, ProcGrid};
pub use error::OocError;
pub use irreg::{
    gather_with, inspect, inspect_counts, irreg_counts, IrregCounts, IrregSchedule, IrregStats,
    ScheduleStamp,
};
pub use layout::FileLayout;
pub use localize::{
    global_section_of_local, global_to_local, local_part, local_section_of_global, local_to_global,
    owner_of,
};
pub use ocla::{ArrayDesc, ArrayId, OocEnv};
pub use persist::{
    checkpoint_file, checkpoint_section, export_array, import_array, remove_checkpoint,
    restore_checkpoint,
};
pub use redist::{redist_counts, redistribute, redistribute_with, relayout_in_place, RedistCounts};
pub use section::{DimRange, Section};
pub use shape::Shape;
pub use slab::SlabPlan;
