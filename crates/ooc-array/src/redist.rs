//! Storage reorganization: relayout on disk and redistribution across
//! processors.
//!
//! §2.3 of the paper: "In order to store data on the disks based on the
//! distribution pattern specified in the program, redistribution of data may
//! be needed … This involves some additional overhead which can be amortized
//! if the array is used several times." Both operations here are real: they
//! move every byte through the I/O layer (and, for redistribution, the
//! message fabric), so experiments can charge or amortize them explicitly.

use dmsim::{Payload, ProcCtx, Tag};
use pario::{plan_union, AccessPlan, ByteRun, IoCharge, IoError, IoMethod, SievePolicy};

use crate::error::OocError;

use crate::layout::FileLayout;
use crate::localize::{global_section_of_local, local_section_of_global};
use crate::ocla::{ArrayDesc, OocEnv};
use crate::section::Section;
use crate::slab::SlabPlan;

/// Tag used by redistribution messages.
const REDIST_TAG: Tag = Tag(0x5ED1);

/// Rewrite the OCLA of `desc` on this processor into `new_layout`, moving at
/// most `memory_elems` elements through memory at a time (slab-wise, slabs
/// along the new layout's slowest dimension so writes are contiguous).
///
/// Returns the descriptor with the new layout. Reads of the old layout are
/// generally strided — that is exactly the cost the compiler weighs against
/// the savings of the reorganized accesses.
pub fn relayout_in_place(
    env: &mut OocEnv,
    desc: &ArrayDesc,
    new_layout: FileLayout,
    memory_elems: usize,
    charge: &dyn IoCharge,
) -> Result<ArrayDesc, IoError> {
    let new_desc = desc.clone().with_layout(new_layout.clone());
    if new_layout == desc.layout {
        return Ok(new_desc);
    }
    let local_shape = desc.local_shape(env.rank());
    if local_shape.is_empty() {
        return Ok(new_desc);
    }
    let slab_dim = new_layout.slowest_dim();
    let plan = SlabPlan::from_memory(local_shape, slab_dim, memory_elems.max(1));
    // Stage through a scratch copy: read each slab under the old layout,
    // write it under the new one. The new LAF replaces the old after the
    // loop; we use a second descriptor id-sharing trick — simplest correct
    // approach is a full temporary in a fresh env file. To keep the LAF id
    // stable we buffer slabs in memory instead: each slab is read fully
    // before any of it is rewritten, and slabs are disjoint, but old and new
    // byte positions of *different* slabs overlap. Hence we must buffer the
    // whole array when layouts interleave. For the 2-D transpose-like case
    // (any permutation), positions of different slabs do overlap, so we take
    // the safe route: read everything slab-wise first, then write slab-wise.
    let mut slab_bufs = Vec::with_capacity(plan.num_slabs());
    for slab in plan.iter() {
        slab_bufs.push(env.read_section(desc, &slab, charge)?);
    }
    for (slab, buf) in plan.iter().zip(slab_bufs) {
        env.write_section(&new_desc, &slab, &buf, charge)?;
    }
    Ok(new_desc)
}

/// Redistribute a global array from `src` to `dst` descriptors (different
/// distribution and/or layout). Collective: every rank must call it with the
/// same descriptors. `dst` must already be allocated in `env`.
///
/// Each pair of processors exchanges exactly the intersection of the
/// sender's and receiver's owned global sections; payloads travel through
/// the message fabric and both file accesses go through the charged I/O
/// path. Failures in either substrate surface as [`OocError`] instead of
/// panicking, so a rank lost to a permanent fault unwinds its peers
/// cleanly.
pub fn redistribute(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    charge: &dyn IoCharge,
) -> Result<(), OocError> {
    redistribute_with(ctx, env, src, dst, IoMethod::Direct, charge)
}

/// [`redistribute`] with an explicit I/O access method.
///
/// * `Direct` — the baseline: each piece is read/written with one request
///   per contiguous file run.
/// * `Sieved` — the same schedule, but every multi-run piece access is
///   serviced by a single spanning request ([`SievePolicy::Always`]); the
///   environment's policy is restored afterwards.
/// * `TwoPhase` — collective two-phase I/O: each rank reads the coalesced
///   *file-conforming union* of everything it contributes, carves the
///   per-destination pieces in memory, exchanges them with an all-to-all,
///   and assembles its whole local destination for one contiguous write.
///
/// All three produce byte-identical array contents; they differ only in the
/// request/message schedule, which is exactly what [`redist_counts`]
/// predicts.
pub fn redistribute_with(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    method: IoMethod,
    charge: &dyn IoCharge,
) -> Result<(), OocError> {
    check_conformance(src, dst);
    let _m = ctx.trace_io_method(method.label());
    match method {
        IoMethod::Direct => redistribute_direct(ctx, env, src, dst, charge),
        IoMethod::Sieved => {
            let saved = env.sieve_policy();
            env.set_sieve_policy(SievePolicy::Always);
            let r = redistribute_direct(ctx, env, src, dst, charge);
            env.set_sieve_policy(saved);
            r
        }
        IoMethod::TwoPhase => redistribute_two_phase(ctx, env, src, dst, charge),
    }
}

fn check_conformance(src: &ArrayDesc, dst: &ArrayDesc) {
    assert_eq!(
        src.dist.global(),
        dst.dist.global(),
        "redistribute: global shapes differ"
    );
    assert_eq!(
        src.dist.nprocs(),
        dst.dist.nprocs(),
        "redistribute: processor counts differ"
    );
}

/// The baseline schedule: one read/send (or local write) per destination,
/// one receive/write per source, each file access serviced piece-wise under
/// the environment's sieve policy.
fn redistribute_direct(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    charge: &dyn IoCharge,
) -> Result<(), OocError> {
    let _span = ctx.trace_span(ooc_trace::Category::Redist, "redistribute");
    let me = ctx.rank();
    let p = ctx.nprocs();

    let my_src_global =
        global_section_of_local(&src.dist, me).expect("regular source distribution required");

    // Send phase (unbounded channels: sends never block on capacity).
    for dst_rank in 0..p {
        let their_dst_global = global_section_of_local(&dst.dist, dst_rank)
            .expect("regular destination distribution required");
        let Some(isect) = my_src_global.intersect(&their_dst_global) else {
            continue;
        };
        let local_src =
            local_section_of_global(&src.dist, me, &isect).expect("sender owns intersection");
        let data = env.read_section(src, &local_src, charge)?;
        if dst_rank == me {
            let local_dst =
                local_section_of_global(&dst.dist, me, &isect).expect("receiver owns intersection");
            env.write_section(dst, &local_dst, &data, charge)?;
        } else {
            ctx.send(dst_rank, REDIST_TAG, Payload::F32(data));
        }
    }

    // Receive phase.
    let my_dst_global =
        global_section_of_local(&dst.dist, me).expect("regular destination distribution required");
    for src_rank in 0..p {
        if src_rank == me {
            continue;
        }
        let their_src_global = global_section_of_local(&src.dist, src_rank)
            .expect("regular source distribution required");
        let Some(isect) = my_dst_global.intersect(&their_src_global) else {
            continue;
        };
        let data = ctx.try_recv_f32(src_rank, REDIST_TAG)?;
        let local_dst =
            local_section_of_global(&dst.dist, me, &isect).expect("receiver owns intersection");
        assert_eq!(data.len(), local_dst.len(), "redistribute payload size");
        env.write_section(dst, &local_dst, &data, charge)?;
    }
    Ok(())
}

/// The piece this rank contributes to `dst_rank`: the intersection of the
/// two ranks' owned global sections, in the sender's local index space.
/// `None` when the ranks share nothing.
fn piece_section(src: &ArrayDesc, dst: &ArrayDesc, me: usize, dst_rank: usize) -> Option<Section> {
    let mine =
        global_section_of_local(&src.dist, me).expect("regular source distribution required");
    let theirs = global_section_of_local(&dst.dist, dst_rank)
        .expect("regular destination distribution required");
    let isect = mine.intersect(&theirs)?;
    Some(local_section_of_global(&src.dist, me, &isect).expect("sender owns intersection"))
}

/// Byte runs of a local section under `desc`'s file layout.
fn section_byte_runs(desc: &ArrayDesc, rank: usize, sec: &Section) -> Vec<ByteRun> {
    let local_shape = desc.local_shape(rank);
    let es = desc.elem.size() as u64;
    desc.layout
        .section_runs(&local_shape, sec)
        .iter()
        .map(|r| ByteRun::new(r.offset * es, r.len * es))
        .collect()
}

/// Two-phase collective redistribution (del Rosario–Bordawekar–Choudhary):
/// phase one services the file-conforming union of this rank's outgoing
/// pieces with coalesced requests; phase two all-to-alls the pieces to
/// their computation-conforming owners, after which each rank assembles its
/// entire local destination in memory and writes it with a single
/// contiguous request.
fn redistribute_two_phase(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    charge: &dyn IoCharge,
) -> Result<(), OocError> {
    let _span = ctx.trace_span(ooc_trace::Category::Redist, "redistribute");
    let me = ctx.rank();
    let p = ctx.nprocs();

    // Phase 1: one coalesced union read covering every outgoing piece.
    let piece_secs: Vec<Option<Section>> = (0..p).map(|j| piece_section(src, dst, me, j)).collect();
    let piece_runs: Vec<Vec<ByteRun>> = piece_secs
        .iter()
        .map(|sec| {
            sec.as_ref()
                .map_or_else(Vec::new, |s| section_byte_runs(src, me, s))
        })
        .collect();
    let plan = plan_union(&piece_runs);
    let union_buf = if plan.buffer_len() > 0 {
        env.read_byte_runs(src, &plan.union, charge)?
    } else {
        Vec::new()
    };

    // Carve the per-destination pieces out of the union buffer, each in the
    // direct path's wire format (section column-major order).
    let mut sends: Vec<Vec<f32>> = Vec::with_capacity(p);
    for (j, sec) in piece_secs.iter().enumerate() {
        match sec {
            Some(sec) => {
                let raw = pario::bytes_to_f32(&plan.carve(j, &union_buf))?;
                sends.push(crate::ocla::reorder_layout_to_cm(&src.layout, sec, raw));
            }
            None => sends.push(Vec::new()),
        }
    }

    // Phase 2: exchange to the computation-conforming decomposition.
    let received = {
        let _x = ctx.trace_span(ooc_trace::Category::Exchange, "exchange");
        ctx.try_alltoallv::<f32>(sends)?
    };

    // Source sections partition the global array, so the incoming pieces
    // tile this rank's whole destination: assemble it in memory and issue
    // one contiguous full-section write.
    let dst_local_shape = dst.local_shape(me);
    if dst_local_shape.is_empty() {
        return Ok(());
    }
    let my_dst_global =
        global_section_of_local(&dst.dist, me).expect("regular destination distribution required");
    let strides = dst_local_shape.strides();
    let mut buf = vec![0.0f32; dst_local_shape.len()];
    for (src_rank, piece) in received.iter().enumerate() {
        if piece.is_empty() {
            continue;
        }
        let their_src = global_section_of_local(&src.dist, src_rank)
            .expect("regular source distribution required");
        let isect = my_dst_global
            .intersect(&their_src)
            .expect("non-empty payload implies intersection");
        let local_dst =
            local_section_of_global(&dst.dist, me, &isect).expect("receiver owns intersection");
        assert_eq!(piece.len(), local_dst.len(), "two-phase payload size");
        for (v, idx) in piece.iter().zip(local_dst.indices()) {
            let off: usize = idx.iter().zip(strides.iter()).map(|(i, s)| i * s).sum();
            buf[off] = *v;
        }
    }
    env.write_section(dst, &Section::full(&dst_local_shape), &buf, charge)?;
    Ok(())
}

/// Predicted I/O and message traffic of [`redistribute_with`] on one rank —
/// an exact replay of the executor's request arithmetic (same section
/// machinery, same coalescing, same sieve planner), so estimate ==
/// measurement holds by construction for every method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RedistCounts {
    /// Disk read requests issued against the *source* array on this rank.
    pub read_requests: u64,
    /// Bytes those reads move (sieved spans count whole).
    pub read_bytes: u64,
    /// Read requests against the *destination* array — the read half of
    /// sieved read-modify-write writes (zero for the other methods).
    pub dst_read_requests: u64,
    /// Bytes those destination-side reads move.
    pub dst_read_bytes: u64,
    /// Disk write requests issued on this rank.
    pub write_requests: u64,
    /// Bytes those writes move.
    pub write_bytes: u64,
    /// Messages this rank sends.
    pub messages: u64,
    /// Payload bytes this rank sends.
    pub msg_bytes: u64,
}

/// Replay the request schedule of `redistribute_with(.., method, ..)` for
/// `rank` without touching any data.
pub fn redist_counts(
    src: &ArrayDesc,
    dst: &ArrayDesc,
    rank: usize,
    method: IoMethod,
) -> RedistCounts {
    check_conformance(src, dst);
    let p = src.dist.nprocs();
    let es = src.elem.size() as u64;
    let mut c = RedistCounts::default();

    let piece_secs: Vec<Option<Section>> =
        (0..p).map(|j| piece_section(src, dst, rank, j)).collect();

    match method {
        IoMethod::Direct | IoMethod::Sieved => {
            let policy = match method {
                IoMethod::Sieved => SievePolicy::Always,
                _ => SievePolicy::Direct,
            };
            // Send phase: one piece-wise read per destination with data.
            for (j, sec) in piece_secs.iter().enumerate() {
                let Some(sec) = sec else { continue };
                let runs = section_byte_runs(src, rank, sec);
                let rp = pario::plan_access(&runs, policy);
                c.read_requests += rp.requests();
                c.read_bytes += rp.bytes();
                if j != rank {
                    c.messages += 1;
                    c.msg_bytes += sec.len() as u64 * es;
                }
            }
            // Receive phase: one piece-wise write per source with data.
            let my_dst_global = global_section_of_local(&dst.dist, rank)
                .expect("regular destination distribution required");
            for src_rank in 0..p {
                let their_src = global_section_of_local(&src.dist, src_rank)
                    .expect("regular source distribution required");
                let Some(isect) = my_dst_global.intersect(&their_src) else {
                    continue;
                };
                let local_dst = local_section_of_global(&dst.dist, rank, &isect)
                    .expect("receiver owns intersection");
                let runs = section_byte_runs(dst, rank, &local_dst);
                match pario::plan_access(&runs, policy) {
                    AccessPlan::Direct(coalesced) => {
                        c.write_requests += coalesced.len() as u64;
                        c.write_bytes += coalesced.iter().map(|r| r.len).sum::<u64>();
                    }
                    // A sieved write is read-modify-write of the span.
                    AccessPlan::Sieved { span, .. } => {
                        c.dst_read_requests += 1;
                        c.dst_read_bytes += span.len;
                        c.write_requests += 1;
                        c.write_bytes += span.len;
                    }
                }
            }
        }
        IoMethod::TwoPhase => {
            let piece_runs: Vec<Vec<ByteRun>> = piece_secs
                .iter()
                .map(|sec| {
                    sec.as_ref()
                        .map_or_else(Vec::new, |s| section_byte_runs(src, rank, s))
                })
                .collect();
            let plan = plan_union(&piece_runs);
            c.read_requests = plan.requests();
            c.read_bytes = plan.bytes();
            // alltoallv posts to every peer, empty pieces included.
            c.messages = p.saturating_sub(1) as u64;
            for (j, sec) in piece_secs.iter().enumerate() {
                if j != rank {
                    c.msg_bytes += sec.as_ref().map_or(0, |s| s.len() as u64) * es;
                }
            }
            let local_len = dst.local_shape(rank).len() as u64;
            if local_len > 0 {
                c.write_requests = 1;
                c.write_bytes = local_len * es;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::ocla::ArrayId;
    use crate::section::Section;
    use crate::shape::Shape;
    use dmsim::{Machine, MachineConfig};
    use pario::{ElemKind, NoCharge};

    fn value(g: &[usize]) -> f32 {
        (1000 * g[0] + g[1]) as f32
    }

    #[test]
    fn relayout_preserves_contents() {
        let desc = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(16, 8), 2),
        );
        let mut env = OocEnv::in_memory(1);
        env.alloc(&desc).unwrap();
        env.load_global(&desc, &value).unwrap();
        let before = env.read_local_all(&desc).unwrap();

        let new_desc =
            relayout_in_place(&mut env, &desc, FileLayout::row_major(2), 24, &NoCharge).unwrap();
        let after = env.read_local_all(&new_desc).unwrap();
        assert_eq!(before, after, "local CM view must be layout-invariant");
    }

    #[test]
    fn relayout_same_layout_is_noop() {
        let desc = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(4, 4), 1),
        );
        let mut env = OocEnv::in_memory(0);
        env.alloc(&desc).unwrap();
        let stats_before = env.disk().stats();
        let nd =
            relayout_in_place(&mut env, &desc, FileLayout::column_major(2), 4, &NoCharge).unwrap();
        assert_eq!(nd, desc);
        assert_eq!(env.disk().stats(), stats_before);
    }

    #[test]
    fn redistribute_column_block_to_row_block() {
        let n = 12;
        let p = 3;
        let src_dist = Distribution::column_block(Shape::matrix(n, n), p);
        let dst_dist = Distribution::row_block(Shape::matrix(n, n), p);
        let src = ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, src_dist);
        let dst = ArrayDesc::new(ArrayId(1), "a2", ElemKind::F32, dst_dist);

        let machine = Machine::new(MachineConfig::free(p));
        let src_c = src.clone();
        let dst_c = dst.clone();
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&src_c).unwrap();
            env.alloc(&dst_c).unwrap();
            env.load_global(&src_c, &value).unwrap();

            redistribute(ctx, &mut env, &src_c, &dst_c, &NoCharge).unwrap();

            // Every local element of dst must hold the right global value.
            let local_shape = dst_c.local_shape(ctx.rank());
            let all = env.read_local_all(&dst_c).unwrap();
            for (off, idx) in Section::full(&local_shape).indices().enumerate() {
                let g = crate::localize::local_to_global(&dst_c.dist, ctx.rank(), &idx);
                assert_eq!(all[off], value(&g), "rank {} idx {:?}", ctx.rank(), idx);
            }
        });
    }

    #[test]
    fn every_method_matches_direct_contents_and_its_replayed_counts() {
        // Column-block/column-major → row-block/row-major: pieces are
        // strided on both sender and receiver, so the three methods take
        // genuinely different request schedules (sieved even goes through
        // its read-modify-write path) — yet contents must be identical, and
        // the measured disk counters must equal the redist_counts replay.
        let n = 12;
        let p = 3;
        let src = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(n, n), p),
        );
        let dst = ArrayDesc::new(
            ArrayId(1),
            "a2",
            ElemKind::F32,
            Distribution::row_block(Shape::matrix(n, n), p),
        )
        .with_layout(FileLayout::row_major(2));

        for method in pario::IoMethod::ALL {
            let machine = Machine::new(MachineConfig::free(p));
            let (src_c, dst_c) = (src.clone(), dst.clone());
            machine.run(move |ctx| {
                let mut env = OocEnv::in_memory(ctx.rank());
                env.alloc(&src_c).unwrap();
                env.alloc(&dst_c).unwrap();
                env.load_global(&src_c, &value).unwrap();

                let before = env.disk().stats();
                redistribute_with(ctx, &mut env, &src_c, &dst_c, method, &NoCharge).unwrap();
                let after = env.disk().stats();

                let counts = redist_counts(&src_c, &dst_c, ctx.rank(), method);
                assert_eq!(
                    after.read_requests - before.read_requests,
                    counts.read_requests + counts.dst_read_requests,
                    "{method:?} rank {} read requests",
                    ctx.rank()
                );
                assert_eq!(
                    after.bytes_read - before.bytes_read,
                    counts.read_bytes + counts.dst_read_bytes,
                    "{method:?} rank {} read bytes",
                    ctx.rank()
                );
                assert_eq!(
                    after.write_requests - before.write_requests,
                    counts.write_requests,
                    "{method:?} rank {} write requests",
                    ctx.rank()
                );
                assert_eq!(
                    after.bytes_written - before.bytes_written,
                    counts.write_bytes,
                    "{method:?} rank {} write bytes",
                    ctx.rank()
                );

                let local_shape = dst_c.local_shape(ctx.rank());
                let all = env.read_local_all(&dst_c).unwrap();
                for (off, idx) in Section::full(&local_shape).indices().enumerate() {
                    let g = crate::localize::local_to_global(&dst_c.dist, ctx.rank(), &idx);
                    assert_eq!(all[off], value(&g), "{method:?} rank {}", ctx.rank());
                }
            });
        }
    }

    #[test]
    fn two_phase_reads_once_where_direct_reads_per_row() {
        // The paper's worst case: a row-major file read in a
        // column-conforming decomposition. Direct issues one request per
        // (row, destination) pair; the file-conforming union of all pieces
        // is this rank's entire contiguous file — one request.
        let n = 16;
        let p = 4;
        let src = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::row_block(Shape::matrix(n, n), p),
        )
        .with_layout(FileLayout::row_major(2));
        let dst = ArrayDesc::new(
            ArrayId(1),
            "a2",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(n, n), p),
        );
        let rows_per_rank = n / p;
        let direct = redist_counts(&src, &dst, 0, pario::IoMethod::Direct);
        let two_phase = redist_counts(&src, &dst, 0, pario::IoMethod::TwoPhase);
        assert_eq!(direct.read_requests, (rows_per_rank * p) as u64);
        assert_eq!(two_phase.read_requests, 1);
        assert_eq!(two_phase.read_bytes, direct.read_bytes, "no overread");
        // Writes collapse too: the receiver assembles its full local part.
        assert_eq!(two_phase.write_requests, 1);
        assert!(direct.write_requests > two_phase.write_requests);
    }

    #[test]
    fn redistribute_block_to_cyclic() {
        use crate::dist::{DimDist, DistKind, ProcGrid};
        let n = 10;
        let p = 4;
        let src_dist = Distribution::row_block(Shape::matrix(n, 3), p);
        let dst_dist = Distribution::new(
            Shape::matrix(n, 3),
            vec![
                DimDist::Distributed {
                    kind: DistKind::Cyclic,
                    axis: 0,
                },
                DimDist::Collapsed,
            ],
            ProcGrid::line(p),
        );
        let src = ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, src_dist);
        let dst = ArrayDesc::new(ArrayId(1), "a2", ElemKind::F32, dst_dist);

        let machine = Machine::new(MachineConfig::free(p));
        let (src_c, dst_c) = (src.clone(), dst.clone());
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&src_c).unwrap();
            env.alloc(&dst_c).unwrap();
            env.load_global(&src_c, &value).unwrap();
            redistribute(ctx, &mut env, &src_c, &dst_c, &NoCharge).unwrap();
            let local_shape = dst_c.local_shape(ctx.rank());
            let all = env.read_local_all(&dst_c).unwrap();
            for (off, idx) in Section::full(&local_shape).indices().enumerate() {
                let g = crate::localize::local_to_global(&dst_c.dist, ctx.rank(), &idx);
                assert_eq!(all[off], value(&g));
            }
        });
    }
}
