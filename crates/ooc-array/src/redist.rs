//! Storage reorganization: relayout on disk and redistribution across
//! processors.
//!
//! §2.3 of the paper: "In order to store data on the disks based on the
//! distribution pattern specified in the program, redistribution of data may
//! be needed … This involves some additional overhead which can be amortized
//! if the array is used several times." Both operations here are real: they
//! move every byte through the I/O layer (and, for redistribution, the
//! message fabric), so experiments can charge or amortize them explicitly.

use dmsim::{Payload, ProcCtx, Tag};
use pario::{IoCharge, IoError};

use crate::error::OocError;

use crate::layout::FileLayout;
use crate::localize::{global_section_of_local, local_section_of_global};
use crate::ocla::{ArrayDesc, OocEnv};
use crate::slab::SlabPlan;

/// Tag used by redistribution messages.
const REDIST_TAG: Tag = Tag(0x5ED1);

/// Rewrite the OCLA of `desc` on this processor into `new_layout`, moving at
/// most `memory_elems` elements through memory at a time (slab-wise, slabs
/// along the new layout's slowest dimension so writes are contiguous).
///
/// Returns the descriptor with the new layout. Reads of the old layout are
/// generally strided — that is exactly the cost the compiler weighs against
/// the savings of the reorganized accesses.
pub fn relayout_in_place(
    env: &mut OocEnv,
    desc: &ArrayDesc,
    new_layout: FileLayout,
    memory_elems: usize,
    charge: &dyn IoCharge,
) -> Result<ArrayDesc, IoError> {
    let new_desc = desc.clone().with_layout(new_layout.clone());
    if new_layout == desc.layout {
        return Ok(new_desc);
    }
    let local_shape = desc.local_shape(env.rank());
    if local_shape.is_empty() {
        return Ok(new_desc);
    }
    let slab_dim = new_layout.slowest_dim();
    let plan = SlabPlan::from_memory(local_shape, slab_dim, memory_elems.max(1));
    // Stage through a scratch copy: read each slab under the old layout,
    // write it under the new one. The new LAF replaces the old after the
    // loop; we use a second descriptor id-sharing trick — simplest correct
    // approach is a full temporary in a fresh env file. To keep the LAF id
    // stable we buffer slabs in memory instead: each slab is read fully
    // before any of it is rewritten, and slabs are disjoint, but old and new
    // byte positions of *different* slabs overlap. Hence we must buffer the
    // whole array when layouts interleave. For the 2-D transpose-like case
    // (any permutation), positions of different slabs do overlap, so we take
    // the safe route: read everything slab-wise first, then write slab-wise.
    let mut slab_bufs = Vec::with_capacity(plan.num_slabs());
    for slab in plan.iter() {
        slab_bufs.push(env.read_section(desc, &slab, charge)?);
    }
    for (slab, buf) in plan.iter().zip(slab_bufs) {
        env.write_section(&new_desc, &slab, &buf, charge)?;
    }
    Ok(new_desc)
}

/// Redistribute a global array from `src` to `dst` descriptors (different
/// distribution and/or layout). Collective: every rank must call it with the
/// same descriptors. `dst` must already be allocated in `env`.
///
/// Each pair of processors exchanges exactly the intersection of the
/// sender's and receiver's owned global sections; payloads travel through
/// the message fabric and both file accesses go through the charged I/O
/// path. Failures in either substrate surface as [`OocError`] instead of
/// panicking, so a rank lost to a permanent fault unwinds its peers
/// cleanly.
pub fn redistribute(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    src: &ArrayDesc,
    dst: &ArrayDesc,
    charge: &dyn IoCharge,
) -> Result<(), OocError> {
    let _span = ctx.trace_span(ooc_trace::Category::Redist, "redistribute");
    assert_eq!(
        src.dist.global(),
        dst.dist.global(),
        "redistribute: global shapes differ"
    );
    assert_eq!(
        src.dist.nprocs(),
        dst.dist.nprocs(),
        "redistribute: processor counts differ"
    );
    let me = ctx.rank();
    let p = ctx.nprocs();

    let my_src_global =
        global_section_of_local(&src.dist, me).expect("regular source distribution required");

    // Send phase (unbounded channels: sends never block on capacity).
    for dst_rank in 0..p {
        let their_dst_global = global_section_of_local(&dst.dist, dst_rank)
            .expect("regular destination distribution required");
        let Some(isect) = my_src_global.intersect(&their_dst_global) else {
            continue;
        };
        let local_src =
            local_section_of_global(&src.dist, me, &isect).expect("sender owns intersection");
        let data = env.read_section(src, &local_src, charge)?;
        if dst_rank == me {
            let local_dst =
                local_section_of_global(&dst.dist, me, &isect).expect("receiver owns intersection");
            env.write_section(dst, &local_dst, &data, charge)?;
        } else {
            ctx.send(dst_rank, REDIST_TAG, Payload::F32(data));
        }
    }

    // Receive phase.
    let my_dst_global =
        global_section_of_local(&dst.dist, me).expect("regular destination distribution required");
    for src_rank in 0..p {
        if src_rank == me {
            continue;
        }
        let their_src_global = global_section_of_local(&src.dist, src_rank)
            .expect("regular source distribution required");
        let Some(isect) = my_dst_global.intersect(&their_src_global) else {
            continue;
        };
        let data = ctx.try_recv_f32(src_rank, REDIST_TAG)?;
        let local_dst =
            local_section_of_global(&dst.dist, me, &isect).expect("receiver owns intersection");
        assert_eq!(data.len(), local_dst.len(), "redistribute payload size");
        env.write_section(dst, &local_dst, &data, charge)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::ocla::ArrayId;
    use crate::section::Section;
    use crate::shape::Shape;
    use dmsim::{Machine, MachineConfig};
    use pario::{ElemKind, NoCharge};

    fn value(g: &[usize]) -> f32 {
        (1000 * g[0] + g[1]) as f32
    }

    #[test]
    fn relayout_preserves_contents() {
        let desc = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(16, 8), 2),
        );
        let mut env = OocEnv::in_memory(1);
        env.alloc(&desc).unwrap();
        env.load_global(&desc, &value).unwrap();
        let before = env.read_local_all(&desc).unwrap();

        let new_desc =
            relayout_in_place(&mut env, &desc, FileLayout::row_major(2), 24, &NoCharge).unwrap();
        let after = env.read_local_all(&new_desc).unwrap();
        assert_eq!(before, after, "local CM view must be layout-invariant");
    }

    #[test]
    fn relayout_same_layout_is_noop() {
        let desc = ArrayDesc::new(
            ArrayId(0),
            "a",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(4, 4), 1),
        );
        let mut env = OocEnv::in_memory(0);
        env.alloc(&desc).unwrap();
        let stats_before = env.disk().stats();
        let nd =
            relayout_in_place(&mut env, &desc, FileLayout::column_major(2), 4, &NoCharge).unwrap();
        assert_eq!(nd, desc);
        assert_eq!(env.disk().stats(), stats_before);
    }

    #[test]
    fn redistribute_column_block_to_row_block() {
        let n = 12;
        let p = 3;
        let src_dist = Distribution::column_block(Shape::matrix(n, n), p);
        let dst_dist = Distribution::row_block(Shape::matrix(n, n), p);
        let src = ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, src_dist);
        let dst = ArrayDesc::new(ArrayId(1), "a2", ElemKind::F32, dst_dist);

        let machine = Machine::new(MachineConfig::free(p));
        let src_c = src.clone();
        let dst_c = dst.clone();
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&src_c).unwrap();
            env.alloc(&dst_c).unwrap();
            env.load_global(&src_c, &value).unwrap();

            redistribute(ctx, &mut env, &src_c, &dst_c, &NoCharge).unwrap();

            // Every local element of dst must hold the right global value.
            let local_shape = dst_c.local_shape(ctx.rank());
            let all = env.read_local_all(&dst_c).unwrap();
            for (off, idx) in Section::full(&local_shape).indices().enumerate() {
                let g = crate::localize::local_to_global(&dst_c.dist, ctx.rank(), &idx);
                assert_eq!(all[off], value(&g), "rank {} idx {:?}", ctx.rank(), idx);
            }
        });
    }

    #[test]
    fn redistribute_block_to_cyclic() {
        use crate::dist::{DimDist, DistKind, ProcGrid};
        let n = 10;
        let p = 4;
        let src_dist = Distribution::row_block(Shape::matrix(n, 3), p);
        let dst_dist = Distribution::new(
            Shape::matrix(n, 3),
            vec![
                DimDist::Distributed {
                    kind: DistKind::Cyclic,
                    axis: 0,
                },
                DimDist::Collapsed,
            ],
            ProcGrid::line(p),
        );
        let src = ArrayDesc::new(ArrayId(0), "a", ElemKind::F32, src_dist);
        let dst = ArrayDesc::new(ArrayId(1), "a2", ElemKind::F32, dst_dist);

        let machine = Machine::new(MachineConfig::free(p));
        let (src_c, dst_c) = (src.clone(), dst.clone());
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&src_c).unwrap();
            env.alloc(&dst_c).unwrap();
            env.load_global(&src_c, &value).unwrap();
            redistribute(ctx, &mut env, &src_c, &dst_c, &NoCharge).unwrap();
            let local_shape = dst_c.local_shape(ctx.rank());
            let all = env.read_local_all(&dst_c).unwrap();
            for (off, idx) in Section::full(&local_shape).indices().enumerate() {
                let g = crate::localize::local_to_global(&dst_c.dist, ctx.rank(), &idx);
                assert_eq!(all[off], value(&g));
            }
        });
    }
}
