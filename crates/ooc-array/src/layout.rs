//! File layouts: how an out-of-core local array is linearized in its LAF.
//!
//! The paper's central optimization *reorganizes data storage on disk* so
//! that the chosen slabs are contiguous: column slabs want column-major
//! files, row slabs want row-major files (§4, Figure 11). A [`FileLayout`]
//! is a permutation of the dimensions ordered fastest-varying first;
//! [`FileLayout::section_runs`] converts an array section into the minimal
//! list of contiguous element runs under that layout — the quantity the cost
//! model counts as I/O requests.

use serde::{Deserialize, Serialize};

use pario::ElemRun;

use crate::section::Section;
use crate::shape::Shape;

/// A dimension permutation, fastest-varying dimension first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileLayout {
    order: Vec<usize>,
}

impl FileLayout {
    /// Layout from an explicit order (must be a permutation of `0..n`).
    pub fn new(order: impl Into<Vec<usize>>) -> Self {
        let order = order.into();
        let mut seen = vec![false; order.len()];
        for &d in &order {
            assert!(d < order.len() && !seen[d], "order must be a permutation");
            seen[d] = true;
        }
        FileLayout { order }
    }

    /// Fortran column-major: dimension 0 fastest.
    pub fn column_major(ndims: usize) -> Self {
        FileLayout::new((0..ndims).collect::<Vec<_>>())
    }

    /// Row-major: last dimension fastest.
    pub fn row_major(ndims: usize) -> Self {
        FileLayout::new((0..ndims).rev().collect::<Vec<_>>())
    }

    /// The layout that makes slabs along `slab_dim` contiguous: `slab_dim`
    /// slowest, remaining dimensions in ascending order fastest-first.
    ///
    /// This is the "data reorganization" the compiler applies when it picks
    /// a slab orientation: e.g. row slabs (`slab_dim = 0`) of a matrix get
    /// layout `[1, 0]`, storing the local array row-major so each row slab
    /// is one contiguous extent.
    pub fn for_slab_dim(ndims: usize, slab_dim: usize) -> Self {
        assert!(slab_dim < ndims);
        let mut order: Vec<usize> = (0..ndims).filter(|&d| d != slab_dim).collect();
        order.push(slab_dim);
        FileLayout::new(order)
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.order.len()
    }

    /// Dimension order, fastest first.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The slowest-varying dimension — slabs along it are contiguous.
    pub fn slowest_dim(&self) -> usize {
        *self.order.last().expect("non-empty layout")
    }

    /// Strides (in elements) of each dimension under this layout for a local
    /// array of `shape`.
    pub fn strides(&self, shape: &Shape) -> Vec<usize> {
        assert_eq!(shape.ndims(), self.ndims());
        let mut strides = vec![0usize; self.ndims()];
        let mut acc = 1usize;
        for &d in &self.order {
            strides[d] = acc;
            acc *= shape.extent(d);
        }
        strides
    }

    /// Linear element offset of `index` in a file holding `shape` under this
    /// layout.
    pub fn linear(&self, shape: &Shape, index: &[usize]) -> usize {
        let strides = self.strides(shape);
        index.iter().zip(&strides).map(|(&i, &s)| i * s).sum()
    }

    /// Decompose `section` of a local array of `shape` into contiguous
    /// element runs under this layout, in ascending offset order.
    ///
    /// The number of returned runs is exactly the number of I/O requests a
    /// strided read of the section issues (before cross-run coalescing,
    /// which cannot apply: consecutive runs are separated by unselected
    /// elements unless the section is degenerate, and degenerate adjacency
    /// is handled by the disk layer's coalescer anyway).
    pub fn section_runs(&self, shape: &Shape, section: &Section) -> Vec<ElemRun> {
        assert_eq!(shape.ndims(), section.ndims());
        if section.is_empty() {
            return Vec::new();
        }
        let strides = self.strides(shape);

        // Grow the contiguous chunk over the fastest dimensions while the
        // section covers them fully with stride 1; a final partially-covered
        // stride-1 dimension extends the chunk once and stops the growth.
        let mut chunk = 1usize;
        let mut outer_start = 0usize; // index into self.order
        for (pos, &d) in self.order.iter().enumerate() {
            let r = section.range(d);
            if r.covers(shape.extent(d)) {
                chunk *= shape.extent(d);
                outer_start = pos + 1;
            } else if r.step == 1 {
                chunk *= r.len();
                outer_start = pos + 1;
                break;
            } else {
                break;
            }
        }

        let outer_dims: Vec<usize> = self.order[outer_start..].to_vec();
        // Enumerate the Cartesian product of the section's ranges over the
        // outer dimensions (fastest outer dimension first => ascending
        // offsets), with inner dimensions pinned at their range starts.
        let base: usize = (0..shape.ndims())
            .map(|d| section.range(d).lo * strides[d])
            .sum();
        if outer_dims.is_empty() {
            return vec![ElemRun::new(base as u64, chunk as u64)];
        }
        let counts: Vec<usize> = outer_dims.iter().map(|&d| section.range(d).len()).collect();
        let total_runs: usize = counts.iter().product();
        let mut runs = Vec::with_capacity(total_runs);
        let mut odo = vec![0usize; outer_dims.len()];
        loop {
            let mut off = base;
            for (k, &d) in outer_dims.iter().enumerate() {
                off += odo[k] * section.range(d).step * strides[d];
            }
            runs.push(ElemRun::new(off as u64, chunk as u64));
            // Advance odometer.
            let mut k = 0;
            loop {
                if k == outer_dims.len() {
                    return runs;
                }
                odo[k] += 1;
                if odo[k] < counts[k] {
                    break;
                }
                odo[k] = 0;
                k += 1;
            }
        }
    }

    /// Number of runs [`FileLayout::section_runs`] would produce, computed
    /// without materializing them — used by the compiler's cost estimator.
    pub fn count_section_runs(&self, shape: &Shape, section: &Section) -> u64 {
        assert_eq!(shape.ndims(), section.ndims());
        if section.is_empty() {
            return 0;
        }
        let mut outer_start = 0usize;
        for (pos, &d) in self.order.iter().enumerate() {
            let r = section.range(d);
            if r.covers(shape.extent(d)) {
                outer_start = pos + 1;
            } else if r.step == 1 {
                outer_start = pos + 1;
                break;
            } else {
                break;
            }
        }
        self.order[outer_start..]
            .iter()
            .map(|&d| section.range(d).len() as u64)
            .product()
    }

    /// Iterate the section's multi-indices in this layout's order (fastest
    /// layout dimension varies fastest) — the order in which
    /// [`FileLayout::section_runs`] delivers elements.
    pub fn section_indices_in_layout_order<'a>(
        &'a self,
        section: &'a Section,
    ) -> impl Iterator<Item = Vec<usize>> + 'a {
        let counts: Vec<usize> = self.order.iter().map(|&d| section.range(d).len()).collect();
        let total: usize = counts.iter().product();
        let order = &self.order;
        (0..total).map(move |mut k| {
            let mut idx = vec![0usize; order.len()];
            for (pos, &d) in order.iter().enumerate() {
                let c = counts[pos];
                let rel = k % c;
                k /= c;
                let r = section.range(d);
                idx[d] = r.lo + rel * r.step;
            }
            idx
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::DimRange;
    use proptest::prelude::*;

    fn sec2(r0: DimRange, r1: DimRange) -> Section {
        Section::new(vec![r0, r1])
    }

    #[test]
    fn column_slab_is_one_run_in_cm() {
        // Local array 8 rows x 6 cols, column-major file. Columns 2..4
        // (full rows) are contiguous: one run of 16 elements at offset 16.
        let shape = Shape::matrix(8, 6);
        let layout = FileLayout::column_major(2);
        let s = sec2(DimRange::full(8), DimRange::new(2, 4));
        let runs = layout.section_runs(&shape, &s);
        assert_eq!(runs, vec![ElemRun::new(16, 16)]);
        assert_eq!(layout.count_section_runs(&shape, &s), 1);
    }

    #[test]
    fn row_slab_in_cm_is_strided() {
        // Rows 2..4 of all 6 columns in a column-major file: 6 runs of 2.
        let shape = Shape::matrix(8, 6);
        let layout = FileLayout::column_major(2);
        let s = sec2(DimRange::new(2, 4), DimRange::full(6));
        let runs = layout.section_runs(&shape, &s);
        assert_eq!(runs.len(), 6);
        assert_eq!(runs[0], ElemRun::new(2, 2));
        assert_eq!(runs[1], ElemRun::new(10, 2));
        assert_eq!(layout.count_section_runs(&shape, &s), 6);
    }

    #[test]
    fn row_slab_is_one_run_in_rm() {
        // Same row slab in a row-major file: contiguous.
        let shape = Shape::matrix(8, 6);
        let layout = FileLayout::row_major(2);
        let s = sec2(DimRange::new(2, 4), DimRange::full(6));
        let runs = layout.section_runs(&shape, &s);
        assert_eq!(runs, vec![ElemRun::new(12, 12)]);
    }

    #[test]
    fn for_slab_dim_makes_slabs_contiguous() {
        let shape = Shape::matrix(8, 6);
        for slab_dim in 0..2 {
            let layout = FileLayout::for_slab_dim(2, slab_dim);
            assert_eq!(layout.slowest_dim(), slab_dim);
            let s = Section::full(&shape).with_range(slab_dim, DimRange::new(1, 3));
            assert_eq!(layout.count_section_runs(&shape, &s), 1);
        }
    }

    #[test]
    fn partial_both_dims_cm() {
        // Rows 1..3 of columns 0..2 in CM 4x4: per-column runs.
        let shape = Shape::matrix(4, 4);
        let layout = FileLayout::column_major(2);
        let s = sec2(DimRange::new(1, 3), DimRange::new(0, 2));
        let runs = layout.section_runs(&shape, &s);
        assert_eq!(runs, vec![ElemRun::new(1, 2), ElemRun::new(5, 2)]);
    }

    #[test]
    fn strided_fast_dim_gives_unit_runs() {
        let shape = Shape::matrix(8, 2);
        let layout = FileLayout::column_major(2);
        let s = sec2(DimRange::strided(0, 8, 2), DimRange::single(0));
        let runs = layout.section_runs(&shape, &s);
        assert_eq!(runs.len(), 4);
        assert!(runs.iter().all(|r| r.len == 1));
    }

    #[test]
    fn layout_order_iteration_matches_runs() {
        let shape = Shape::matrix(4, 3);
        let layout = FileLayout::row_major(2);
        let s = sec2(DimRange::new(1, 3), DimRange::new(0, 3));
        // Walk runs element by element; they must visit the same offsets as
        // the layout-order index iteration.
        let runs = layout.section_runs(&shape, &s);
        let offs_from_runs: Vec<u64> = runs
            .iter()
            .flat_map(|r| r.offset..r.offset + r.len)
            .collect();
        let offs_from_iter: Vec<u64> = layout
            .section_indices_in_layout_order(&s)
            .map(|i| layout.linear(&shape, &i) as u64)
            .collect();
        assert_eq!(offs_from_runs, offs_from_iter);
    }

    #[test]
    fn three_d_slab_runs() {
        let shape = Shape::new(vec![4, 4, 4]);
        let layout = FileLayout::for_slab_dim(3, 1);
        let s = Section::full(&shape).with_range(1, DimRange::new(2, 3));
        assert_eq!(layout.count_section_runs(&shape, &s), 1);
        let runs = layout.section_runs(&shape, &s);
        assert_eq!(runs, vec![ElemRun::new(32, 16)]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_permutation_rejected() {
        FileLayout::new(vec![0, 0]);
    }

    proptest! {
        #[test]
        fn runs_cover_section_exactly(
            n0 in 1usize..6, n1 in 1usize..6, n2 in 1usize..4,
            lo0 in 0usize..6, len0 in 1usize..6,
            lo1 in 0usize..6, len1 in 1usize..6,
            perm in 0usize..6,
        ) {
            let shape = Shape::new(vec![n0, n1, n2]);
            let orders = [
                vec![0,1,2], vec![0,2,1], vec![1,0,2],
                vec![1,2,0], vec![2,0,1], vec![2,1,0],
            ];
            let layout = FileLayout::new(orders[perm].clone());
            let s = Section::new(vec![
                DimRange::new(lo0.min(n0.saturating_sub(1)), (lo0 + len0).min(n0)),
                DimRange::new(lo1.min(n1.saturating_sub(1)), (lo1 + len1).min(n1)),
                DimRange::full(n2),
            ]);
            let runs = layout.section_runs(&shape, &s);
            prop_assert_eq!(runs.len() as u64, layout.count_section_runs(&shape, &s));
            // Runs cover exactly the offsets of the section's elements.
            let mut from_runs: Vec<u64> =
                runs.iter().flat_map(|r| r.offset..r.offset + r.len).collect();
            from_runs.sort_unstable();
            let mut expected: Vec<u64> = s
                .indices()
                .map(|i| layout.linear(&shape, &i) as u64)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(from_runs, expected);
            // Offsets are ascending run-to-run (runs don't overlap).
            for w in runs.windows(2) {
                prop_assert!(w[0].offset + w[0].len <= w[1].offset);
            }
        }
    }
}
