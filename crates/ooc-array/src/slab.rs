//! Slab plans: stripmining an out-of-core local array into in-core slabs.
//!
//! A slab (§3.3) is the portion of the OCLA fetched into memory for one
//! computation stage: the full extent in every dimension except the *slab
//! dimension*, which is cut into pieces of a chosen thickness. Column slabs
//! are slabs along dimension 1 of a matrix; row slabs along dimension 0
//! (Figure 11).

use serde::{Deserialize, Serialize};

use crate::section::{DimRange, Section};
use crate::shape::Shape;

/// A stripmining plan over one local array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlabPlan {
    local_shape: Shape,
    slab_dim: usize,
    thickness: usize,
}

impl SlabPlan {
    /// Plan with an explicit thickness (indices of `slab_dim` per slab).
    pub fn new(local_shape: Shape, slab_dim: usize, thickness: usize) -> Self {
        assert!(slab_dim < local_shape.ndims(), "slab dim out of range");
        assert!(thickness > 0, "slab thickness must be positive");
        SlabPlan {
            local_shape,
            slab_dim,
            thickness,
        }
    }

    /// Plan sized so one slab holds at most `max_elems` elements (the ICLA
    /// memory budget of §3.3). Thickness is clamped to at least one index.
    pub fn from_memory(local_shape: Shape, slab_dim: usize, max_elems: usize) -> Self {
        let others: usize = (0..local_shape.ndims())
            .filter(|&d| d != slab_dim)
            .map(|d| local_shape.extent(d))
            .fold(1, |a, b| a * b.max(1));
        let thickness = (max_elems / others.max(1)).clamp(1, local_shape.extent(slab_dim).max(1));
        SlabPlan::new(local_shape, slab_dim, thickness)
    }

    /// Plan from the paper's *slab ratio* (slab size / OCLA size): a ratio
    /// of 1 gives a single slab holding the whole OCLA.
    pub fn from_ratio(local_shape: Shape, slab_dim: usize, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "slab ratio in (0, 1]");
        let extent = local_shape.extent(slab_dim).max(1);
        let thickness = ((extent as f64 * ratio).round() as usize).clamp(1, extent);
        SlabPlan::new(local_shape, slab_dim, thickness)
    }

    /// The local array shape being stripmined.
    pub fn local_shape(&self) -> &Shape {
        &self.local_shape
    }

    /// The dimension being cut.
    pub fn slab_dim(&self) -> usize {
        self.slab_dim
    }

    /// Indices of the slab dimension per slab.
    pub fn thickness(&self) -> usize {
        self.thickness
    }

    /// Number of slabs (stages of the stripmined loop).
    pub fn num_slabs(&self) -> usize {
        self.local_shape
            .extent(self.slab_dim)
            .div_ceil(self.thickness)
    }

    /// Maximum elements of any slab — the ICLA size this plan requires.
    pub fn max_slab_elems(&self) -> usize {
        let others: usize = (0..self.local_shape.ndims())
            .filter(|&d| d != self.slab_dim)
            .map(|d| self.local_shape.extent(d))
            .product();
        others * self.thickness.min(self.local_shape.extent(self.slab_dim))
    }

    /// The `i`-th slab as a local section.
    pub fn slab(&self, i: usize) -> Section {
        assert!(i < self.num_slabs(), "slab index out of range");
        let lo = i * self.thickness;
        let hi = ((i + 1) * self.thickness).min(self.local_shape.extent(self.slab_dim));
        Section::full(&self.local_shape).with_range(self.slab_dim, DimRange::new(lo, hi))
    }

    /// Iterate all slabs in order.
    pub fn iter(&self) -> impl Iterator<Item = Section> + '_ {
        (0..self.num_slabs()).map(|i| self.slab(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn column_slabs_of_paper_example() {
        // OCLA of A on 4 procs for 64x64: 64 x 16. Column slabs of 4.
        let plan = SlabPlan::new(Shape::matrix(64, 16), 1, 4);
        assert_eq!(plan.num_slabs(), 4);
        assert_eq!(plan.max_slab_elems(), 256);
        let s1 = plan.slab(1);
        assert_eq!(s1.range(0), DimRange::full(64));
        assert_eq!(s1.range(1), DimRange::new(4, 8));
    }

    #[test]
    fn ragged_final_slab() {
        let plan = SlabPlan::new(Shape::matrix(4, 10), 1, 3);
        assert_eq!(plan.num_slabs(), 4);
        assert_eq!(plan.slab(3).range(1), DimRange::new(9, 10));
    }

    #[test]
    fn from_memory_respects_budget() {
        // 64 x 16 local array, budget 300 elements: thickness = 300/16... no,
        // slab over dim 0: others = 16, thickness = 300/16 = 18.
        let plan = SlabPlan::from_memory(Shape::matrix(64, 16), 0, 300);
        assert_eq!(plan.thickness(), 18);
        assert!(plan.max_slab_elems() <= 300);
        // Tiny budget still yields a workable plan.
        let tiny = SlabPlan::from_memory(Shape::matrix(64, 16), 0, 1);
        assert_eq!(tiny.thickness(), 1);
    }

    #[test]
    fn from_ratio_matches_paper_slab_ratios() {
        let local = Shape::matrix(1024, 256);
        for (ratio, expect_slabs) in [(1.0, 1), (0.5, 2), (0.25, 4), (0.125, 8)] {
            let plan = SlabPlan::from_ratio(local.clone(), 1, ratio);
            assert_eq!(plan.num_slabs(), expect_slabs, "ratio {ratio}");
        }
    }

    proptest! {
        #[test]
        fn slabs_partition_the_local_array(
            rows in 1usize..20, cols in 1usize..20,
            dim in 0usize..2, t in 1usize..8
        ) {
            let shape = Shape::matrix(rows, cols);
            let plan = SlabPlan::new(shape.clone(), dim, t);
            let mut seen = vec![false; shape.len()];
            for slab in plan.iter() {
                for idx in slab.indices() {
                    let off = shape.linear(&idx);
                    prop_assert!(!seen[off], "element visited twice");
                    seen[off] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "element missed");
        }

        #[test]
        fn max_slab_elems_is_max(
            rows in 1usize..16, cols in 1usize..16, dim in 0usize..2, t in 1usize..6
        ) {
            let plan = SlabPlan::new(Shape::matrix(rows, cols), dim, t);
            let biggest = plan.iter().map(|s| s.len()).max().unwrap();
            prop_assert_eq!(biggest, plan.max_slab_elems());
        }
    }
}
