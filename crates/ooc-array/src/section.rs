//! Regular array sections (`l:u:s` per dimension, 0-based half-open).
//!
//! Sections describe both the iteration spaces the compiler stripmines and
//! the slabs the runtime fetches. They support the intersection algebra the
//! in-core compilation phase needs to compute local bounds.

use serde::{Deserialize, Serialize};

use crate::shape::Shape;

/// A strided range over one dimension: indices `lo, lo+step, … < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
    /// Stride (≥ 1).
    pub step: usize,
}

impl DimRange {
    /// `lo..hi` with stride 1.
    pub fn new(lo: usize, hi: usize) -> Self {
        DimRange { lo, hi, step: 1 }
    }

    /// `lo..hi` with an explicit stride.
    pub fn strided(lo: usize, hi: usize, step: usize) -> Self {
        assert!(step >= 1, "stride must be positive");
        DimRange { lo, hi, step }
    }

    /// The full extent of a dimension.
    pub fn full(extent: usize) -> Self {
        DimRange::new(0, extent)
    }

    /// A single index.
    pub fn single(i: usize) -> Self {
        DimRange::new(i, i + 1)
    }

    /// Number of indices in the range.
    pub fn len(&self) -> usize {
        if self.hi <= self.lo {
            0
        } else {
            (self.hi - self.lo).div_ceil(self.step)
        }
    }

    /// True when the range selects nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the range is `0..extent` with stride 1.
    pub fn covers(&self, extent: usize) -> bool {
        self.step == 1 && self.lo == 0 && self.hi >= extent
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i >= self.lo && i < self.hi && (i - self.lo).is_multiple_of(self.step)
    }

    /// Iterate the indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (self.lo..self.hi).step_by(self.step)
    }

    /// Intersection with another range. Exact for stride-1 ranges (the only
    /// strided intersections the runtime performs are with stride-1 slabs);
    /// general stride pairs fall back to `None` when either stride > 1 and
    /// they differ.
    pub fn intersect(&self, other: &DimRange) -> Option<DimRange> {
        if self.step == 1 && other.step == 1 {
            let lo = self.lo.max(other.lo);
            let hi = self.hi.min(other.hi);
            return if lo < hi {
                Some(DimRange::new(lo, hi))
            } else {
                None
            };
        }
        if self.step == other.step && (self.lo % self.step) == (other.lo % other.step) {
            let lo = self.lo.max(other.lo);
            let hi = self.hi.min(other.hi);
            return if lo < hi {
                Some(DimRange::strided(lo, hi, self.step))
            } else {
                None
            };
        }
        // One strided, one dense: restrict the strided one.
        if self.step == 1 {
            return other.intersect(self);
        }
        if other.step == 1 {
            let lo_raw = self.lo.max(other.lo);
            // Round lo_raw up to the stride lattice of self.
            let k = (lo_raw.saturating_sub(self.lo)).div_ceil(self.step);
            let lo = self.lo + k * self.step;
            let hi = self.hi.min(other.hi);
            return if lo < hi {
                Some(DimRange::strided(lo, hi, self.step))
            } else {
                None
            };
        }
        None
    }
}

/// An n-dimensional regular section: one [`DimRange`] per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Section {
    ranges: Vec<DimRange>,
}

impl Section {
    /// Section from per-dimension ranges.
    pub fn new(ranges: impl Into<Vec<DimRange>>) -> Self {
        Section {
            ranges: ranges.into(),
        }
    }

    /// The whole of `shape`.
    pub fn full(shape: &Shape) -> Self {
        Section::new(
            shape
                .extents()
                .iter()
                .map(|&e| DimRange::full(e))
                .collect::<Vec<_>>(),
        )
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.ranges.len()
    }

    /// Range along dimension `d`.
    pub fn range(&self, d: usize) -> DimRange {
        self.ranges[d]
    }

    /// All ranges.
    pub fn ranges(&self) -> &[DimRange] {
        &self.ranges
    }

    /// Replace the range along dimension `d` (builder style).
    pub fn with_range(mut self, d: usize, r: DimRange) -> Self {
        self.ranges[d] = r;
        self
    }

    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|r| r.len()).product()
    }

    /// True when the section selects nothing.
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().any(|r| r.is_empty())
    }

    /// The extents of the section viewed as a dense array of its own.
    pub fn shape(&self) -> Shape {
        Shape::new(self.ranges.iter().map(|r| r.len()).collect::<Vec<_>>())
    }

    /// Element-wise intersection; `None` if empty or not representable.
    pub fn intersect(&self, other: &Section) -> Option<Section> {
        assert_eq!(self.ndims(), other.ndims(), "rank mismatch");
        let mut ranges = Vec::with_capacity(self.ndims());
        for (a, b) in self.ranges.iter().zip(other.ranges.iter()) {
            ranges.push(a.intersect(b)?);
        }
        Some(Section::new(ranges))
    }

    /// Membership test for a multi-index.
    pub fn contains(&self, index: &[usize]) -> bool {
        index.len() == self.ndims() && self.ranges.iter().zip(index).all(|(r, &i)| r.contains(i))
    }

    /// Iterate the selected multi-indices in column-major order (dimension 0
    /// fastest).
    pub fn indices(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        let sec_shape = self.shape();
        sec_shape.indices().map(move |rel| {
            rel.iter()
                .enumerate()
                .map(|(d, &k)| self.ranges[d].lo + k * self.ranges[d].step)
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_len_and_contains() {
        let r = DimRange::strided(2, 11, 3); // 2, 5, 8
        assert_eq!(r.len(), 3);
        assert!(r.contains(5));
        assert!(!r.contains(6));
        assert!(!r.contains(11));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 5, 8]);
    }

    #[test]
    fn dense_intersection() {
        let a = DimRange::new(0, 10);
        let b = DimRange::new(5, 20);
        assert_eq!(a.intersect(&b), Some(DimRange::new(5, 10)));
        assert_eq!(b.intersect(&a), Some(DimRange::new(5, 10)));
        assert_eq!(a.intersect(&DimRange::new(10, 12)), None);
    }

    #[test]
    fn strided_vs_dense_intersection() {
        let s = DimRange::strided(1, 20, 4); // 1,5,9,13,17
        let d = DimRange::new(6, 18);
        let got = s.intersect(&d).unwrap();
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![9, 13, 17]);
        let got2 = d.intersect(&s).unwrap();
        assert_eq!(got2.iter().collect::<Vec<_>>(), vec![9, 13, 17]);
    }

    #[test]
    fn section_basics() {
        let s = Section::new(vec![DimRange::new(1, 3), DimRange::new(0, 4)]);
        assert_eq!(s.len(), 8);
        assert_eq!(s.shape().extents(), &[2, 4]);
        assert!(s.contains(&[2, 3]));
        assert!(!s.contains(&[3, 3]));
    }

    #[test]
    fn section_indices_cm_order() {
        let s = Section::new(vec![DimRange::new(1, 3), DimRange::new(5, 7)]);
        let idx: Vec<_> = s.indices().collect();
        assert_eq!(idx, vec![vec![1, 5], vec![2, 5], vec![1, 6], vec![2, 6]]);
    }

    #[test]
    fn full_section_covers_shape() {
        let shape = Shape::matrix(3, 5);
        let s = Section::full(&shape);
        assert_eq!(s.len(), 15);
        assert!(s.range(0).covers(3));
        assert!(s.range(1).covers(5));
    }

    #[test]
    fn empty_intersection_is_none() {
        let a = Section::new(vec![DimRange::new(0, 2), DimRange::new(0, 2)]);
        let b = Section::new(vec![DimRange::new(2, 4), DimRange::new(0, 2)]);
        assert!(a.intersect(&b).is_none());
    }

    proptest! {
        #[test]
        fn intersection_matches_pointwise(
            alo in 0usize..15, alen in 0usize..15, astep in 1usize..4,
            blo in 0usize..15, blen in 0usize..15,
        ) {
            let a = DimRange::strided(alo, alo + alen, astep);
            let b = DimRange::new(blo, blo + blen);
            let got: Vec<usize> = match a.intersect(&b) {
                Some(r) => r.iter().collect(),
                None => vec![],
            };
            let expect: Vec<usize> =
                (0..40).filter(|&i| a.contains(i) && b.contains(i)).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn section_len_equals_index_count(
            l0 in 0usize..4, n0 in 0usize..4, l1 in 0usize..4, n1 in 0usize..4
        ) {
            let s = Section::new(vec![
                DimRange::new(l0, l0 + n0),
                DimRange::new(l1, l1 + n1),
            ]);
            prop_assert_eq!(s.indices().count(), s.len());
            prop_assert_eq!(s.is_empty(), s.is_empty());
        }
    }
}
