//! HPF-style data distributions over a processor grid.
//!
//! A [`Distribution`] records, for each array dimension, whether it is
//! collapsed (`*` in HPF — the whole extent lives on every owning processor)
//! or distributed over one axis of a [`ProcGrid`] with block, cyclic or
//! block-cyclic mapping. The paper's GAXPY example uses 1-D grids:
//! `A, C: (*, block)` (column-block) and `B: (block, *)` (row-block).

use serde::{Deserialize, Serialize};

use crate::section::DimRange;
use crate::shape::Shape;

/// Mapping of a distributed dimension onto processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistKind {
    /// Contiguous blocks of `ceil(n/p)` indices.
    Block,
    /// Round-robin single indices.
    Cyclic,
    /// Round-robin blocks of the given size.
    BlockCyclic(usize),
}

/// Per-dimension distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimDist {
    /// HPF `*`: not partitioned; every processor owning the other dimensions
    /// holds this whole extent.
    Collapsed,
    /// Partitioned over grid axis `axis` with the given mapping.
    Distributed {
        /// The mapping rule.
        kind: DistKind,
        /// Which processor-grid axis this dimension is spread over.
        axis: usize,
    },
}

/// A Cartesian grid of processors. Rank order is column-major (axis 0
/// fastest), matching the array linearization convention.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcGrid {
    extents: Vec<usize>,
}

impl ProcGrid {
    /// Grid from axis extents. Every axis must be non-empty.
    pub fn new(extents: impl Into<Vec<usize>>) -> Self {
        let extents = extents.into();
        assert!(
            !extents.is_empty() && extents.iter().all(|&e| e > 0),
            "processor grid axes must be non-empty"
        );
        ProcGrid { extents }
    }

    /// 1-D grid of `p` processors (the paper's `processors Pr(nprocs)`).
    pub fn line(p: usize) -> Self {
        ProcGrid::new(vec![p])
    }

    /// Number of grid axes.
    pub fn naxes(&self) -> usize {
        self.extents.len()
    }

    /// Extent of axis `a`.
    pub fn extent(&self, a: usize) -> usize {
        self.extents[a]
    }

    /// Total processors.
    pub fn nprocs(&self) -> usize {
        self.extents.iter().product()
    }

    /// Grid coordinates of `rank`.
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.nprocs(), "rank out of grid");
        Shape::new(self.extents.clone()).unlinear(rank)
    }

    /// Rank of grid coordinates.
    pub fn rank(&self, coords: &[usize]) -> usize {
        Shape::new(self.extents.clone()).linear(coords)
    }
}

/// A complete distribution: global shape + per-dimension mapping + grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Distribution {
    global: Shape,
    dims: Vec<DimDist>,
    grid: ProcGrid,
}

impl Distribution {
    /// Build and validate a distribution. Each grid axis must be used by at
    /// most one array dimension; axes used by none would replicate data,
    /// which the out-of-core model does not support.
    pub fn new(global: Shape, dims: Vec<DimDist>, grid: ProcGrid) -> Self {
        assert_eq!(global.ndims(), dims.len(), "one DimDist per dimension");
        let mut used = vec![false; grid.naxes()];
        for d in &dims {
            if let DimDist::Distributed { axis, kind } = d {
                assert!(*axis < grid.naxes(), "grid axis {axis} out of range");
                assert!(!used[*axis], "grid axis {axis} used by two dimensions");
                used[*axis] = true;
                if let DistKind::BlockCyclic(b) = kind {
                    assert!(*b > 0, "block-cyclic block size must be positive");
                }
            }
        }
        assert!(
            used.iter().all(|&u| u),
            "every grid axis must map exactly one array dimension"
        );
        Distribution { global, dims, grid }
    }

    /// Column-block distribution of a matrix over a 1-D grid: `(*, block)`.
    pub fn column_block(global: Shape, p: usize) -> Self {
        assert_eq!(global.ndims(), 2);
        Distribution::new(
            global,
            vec![
                DimDist::Collapsed,
                DimDist::Distributed {
                    kind: DistKind::Block,
                    axis: 0,
                },
            ],
            ProcGrid::line(p),
        )
    }

    /// Row-block distribution of a matrix over a 1-D grid: `(block, *)`.
    pub fn row_block(global: Shape, p: usize) -> Self {
        assert_eq!(global.ndims(), 2);
        Distribution::new(
            global,
            vec![
                DimDist::Distributed {
                    kind: DistKind::Block,
                    axis: 0,
                },
                DimDist::Collapsed,
            ],
            ProcGrid::line(p),
        )
    }

    /// Global shape.
    pub fn global(&self) -> &Shape {
        &self.global
    }

    /// Per-dimension mappings.
    pub fn dims(&self) -> &[DimDist] {
        &self.dims
    }

    /// The processor grid.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Total processors.
    pub fn nprocs(&self) -> usize {
        self.grid.nprocs()
    }

    /// Block size used along dimension `d` (for `Block`: `ceil(n/p)`).
    fn block_of(&self, d: usize) -> Option<usize> {
        match self.dims[d] {
            DimDist::Distributed {
                kind: DistKind::Block,
                axis,
            } => Some(self.global.extent(d).div_ceil(self.grid.extent(axis))),
            _ => None,
        }
    }

    /// Grid coordinate (along the owning axis) of global index `g` in
    /// dimension `d`. `None` for collapsed dimensions.
    pub fn owner_coord(&self, d: usize, g: usize) -> Option<usize> {
        debug_assert!(g < self.global.extent(d));
        match self.dims[d] {
            DimDist::Collapsed => None,
            DimDist::Distributed { kind, axis } => {
                let p = self.grid.extent(axis);
                Some(match kind {
                    DistKind::Block => g / self.block_of(d).expect("block"),
                    DistKind::Cyclic => g % p,
                    DistKind::BlockCyclic(b) => (g / b) % p,
                })
            }
        }
    }

    /// Rank of the processor owning the element at `index`.
    pub fn owner(&self, index: &[usize]) -> usize {
        let mut coords = vec![0; self.grid.naxes()];
        for (d, dd) in self.dims.iter().enumerate() {
            if let DimDist::Distributed { axis, .. } = dd {
                coords[*axis] = self
                    .owner_coord(d, index[d])
                    .expect("distributed dim has coord");
            }
        }
        self.grid.rank(&coords)
    }

    /// Local index along dimension `d` of global index `g` (valid on the
    /// owning processor).
    pub fn local_index(&self, d: usize, g: usize) -> usize {
        match self.dims[d] {
            DimDist::Collapsed => g,
            DimDist::Distributed { kind, axis } => {
                let p = self.grid.extent(axis);
                match kind {
                    DistKind::Block => g % self.block_of(d).expect("block"),
                    DistKind::Cyclic => g / p,
                    DistKind::BlockCyclic(b) => (g / (b * p)) * b + g % b,
                }
            }
        }
    }

    /// Global index along dimension `d` of local index `l` on grid
    /// coordinate `coord`.
    pub fn global_index(&self, d: usize, coord: usize, l: usize) -> usize {
        match self.dims[d] {
            DimDist::Collapsed => l,
            DimDist::Distributed { kind, axis } => {
                let p = self.grid.extent(axis);
                match kind {
                    DistKind::Block => coord * self.block_of(d).expect("block") + l,
                    DistKind::Cyclic => l * p + coord,
                    DistKind::BlockCyclic(b) => (l / b) * b * p + coord * b + l % b,
                }
            }
        }
    }

    /// Number of local elements along dimension `d` on grid coordinate
    /// `coord`.
    pub fn local_extent(&self, d: usize, coord: usize) -> usize {
        let n = self.global.extent(d);
        match self.dims[d] {
            DimDist::Collapsed => n,
            DimDist::Distributed { kind, axis } => {
                let p = self.grid.extent(axis);
                match kind {
                    DistKind::Block => {
                        let b = self.block_of(d).expect("block");
                        n.saturating_sub(coord * b).min(b)
                    }
                    DistKind::Cyclic => (n + p - 1 - coord) / p,
                    DistKind::BlockCyclic(b) => {
                        // Count indices g < n with (g/b) % p == coord.
                        let full_cycles = n / (b * p);
                        let mut cnt = full_cycles * b;
                        let rem_start = full_cycles * b * p;
                        for g in rem_start..n {
                            if (g / b) % p == coord {
                                cnt += 1;
                            }
                        }
                        cnt
                    }
                }
            }
        }
    }

    /// Shape of the out-of-core local array on `rank`.
    pub fn local_shape(&self, rank: usize) -> Shape {
        let coords = self.grid.coords(rank);
        let exts: Vec<usize> = self
            .dims
            .iter()
            .enumerate()
            .map(|(d, dd)| match dd {
                DimDist::Collapsed => self.global.extent(d),
                DimDist::Distributed { axis, .. } => self.local_extent(d, coords[*axis]),
            })
            .collect();
        Shape::new(exts)
    }

    /// The global indices owned along dimension `d` by grid coordinate
    /// `coord`, as a regular range. `None` for block-cyclic (not a regular
    /// section).
    pub fn owned_range(&self, d: usize, coord: usize) -> Option<DimRange> {
        let n = self.global.extent(d);
        match self.dims[d] {
            DimDist::Collapsed => Some(DimRange::new(0, n)),
            DimDist::Distributed { kind, axis } => {
                let p = self.grid.extent(axis);
                match kind {
                    DistKind::Block => {
                        let b = self.block_of(d).expect("block");
                        let lo = (coord * b).min(n);
                        let hi = ((coord + 1) * b).min(n);
                        Some(DimRange::new(lo, hi))
                    }
                    DistKind::Cyclic => {
                        if coord < n {
                            Some(DimRange::strided(coord, n, p))
                        } else {
                            Some(DimRange::new(0, 0))
                        }
                    }
                    DistKind::BlockCyclic(_) => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block_dist(n: usize, p: usize) -> Distribution {
        Distribution::row_block(Shape::matrix(n, 3), p)
    }

    #[test]
    fn paper_distributions() {
        // 64x64 arrays on 4 procs, as in Figure 3.
        let a = Distribution::column_block(Shape::matrix(64, 64), 4);
        assert_eq!(a.local_shape(0).extents(), &[64, 16]);
        assert_eq!(a.owner(&[10, 17]), 1);
        let b = Distribution::row_block(Shape::matrix(64, 64), 4);
        assert_eq!(b.local_shape(3).extents(), &[16, 64]);
        assert_eq!(b.owner(&[63, 0]), 3);
    }

    #[test]
    fn block_round_trip() {
        let d = block_dist(10, 3); // blocks of ceil(10/3)=4: [0..4),[4..8),[8..10)
        assert_eq!(d.local_extent(0, 0), 4);
        assert_eq!(d.local_extent(0, 1), 4);
        assert_eq!(d.local_extent(0, 2), 2);
        for g in 0..10 {
            let c = d.owner_coord(0, g).unwrap();
            let l = d.local_index(0, g);
            assert_eq!(d.global_index(0, c, l), g);
            assert!(l < d.local_extent(0, c));
        }
    }

    #[test]
    fn cyclic_round_trip() {
        let d = Distribution::new(
            Shape::matrix(11, 2),
            vec![
                DimDist::Distributed {
                    kind: DistKind::Cyclic,
                    axis: 0,
                },
                DimDist::Collapsed,
            ],
            ProcGrid::line(4),
        );
        let mut per_proc = [0usize; 4];
        for g in 0..11 {
            let c = d.owner_coord(0, g).unwrap();
            per_proc[c] += 1;
            let l = d.local_index(0, g);
            assert_eq!(d.global_index(0, c, l), g);
        }
        for (c, &owned) in per_proc.iter().enumerate() {
            assert_eq!(owned, d.local_extent(0, c), "coord {c}");
        }
        // Owned ranges are strided.
        let r = d.owned_range(0, 1).unwrap();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn block_cyclic_round_trip() {
        let d = Distribution::new(
            Shape::matrix(23, 1),
            vec![
                DimDist::Distributed {
                    kind: DistKind::BlockCyclic(3),
                    axis: 0,
                },
                DimDist::Collapsed,
            ],
            ProcGrid::line(3),
        );
        let mut seen = vec![vec![]; 3];
        for g in 0..23 {
            let c = d.owner_coord(0, g).unwrap();
            let l = d.local_index(0, g);
            assert_eq!(d.global_index(0, c, l), g, "g={g}");
            seen[c].push(l);
        }
        for (c, locals) in seen.iter().enumerate() {
            assert_eq!(locals.len(), d.local_extent(0, c), "coord {c}");
            // Local indices are dense 0..extent.
            let mut s = locals.clone();
            s.sort_unstable();
            assert_eq!(s, (0..s.len()).collect::<Vec<_>>(), "coord {c}");
        }
    }

    #[test]
    fn grid_coords_round_trip() {
        let g = ProcGrid::new(vec![2, 3]);
        assert_eq!(g.nprocs(), 6);
        for r in 0..6 {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
        assert_eq!(g.coords(3), vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "grid axis")]
    fn two_dims_on_one_axis_rejected() {
        Distribution::new(
            Shape::matrix(4, 4),
            vec![
                DimDist::Distributed {
                    kind: DistKind::Block,
                    axis: 0,
                },
                DimDist::Distributed {
                    kind: DistKind::Block,
                    axis: 0,
                },
            ],
            ProcGrid::line(2),
        );
    }

    #[test]
    #[should_panic(expected = "every grid axis")]
    fn unused_axis_rejected() {
        Distribution::new(
            Shape::matrix(4, 4),
            vec![DimDist::Collapsed, DimDist::Collapsed],
            ProcGrid::line(2),
        );
    }

    proptest! {
        #[test]
        fn owner_and_local_consistent_for_all_kinds(
            n in 1usize..40, p in 1usize..6, kind in 0usize..3, b in 1usize..4
        ) {
            let kind = match kind {
                0 => DistKind::Block,
                1 => DistKind::Cyclic,
                _ => DistKind::BlockCyclic(b),
            };
            let d = Distribution::new(
                Shape::new(vec![n]),
                vec![DimDist::Distributed { kind, axis: 0 }],
                ProcGrid::line(p),
            );
            let mut counts = vec![0usize; p];
            for g in 0..n {
                let c = d.owner_coord(0, g).unwrap();
                prop_assert!(c < p);
                let l = d.local_index(0, g);
                prop_assert_eq!(d.global_index(0, c, l), g);
                counts[c] += 1;
            }
            for (c, &count) in counts.iter().enumerate() {
                prop_assert_eq!(count, d.local_extent(0, c));
            }
            prop_assert_eq!(counts.iter().sum::<usize>(), n);
        }

        #[test]
        fn owned_ranges_partition_block_and_cyclic(
            n in 1usize..50, p in 1usize..7, cyclic in proptest::bool::ANY
        ) {
            let kind = if cyclic { DistKind::Cyclic } else { DistKind::Block };
            let d = Distribution::new(
                Shape::new(vec![n]),
                vec![DimDist::Distributed { kind, axis: 0 }],
                ProcGrid::line(p),
            );
            let mut seen = vec![false; n];
            for c in 0..p {
                for g in d.owned_range(0, c).unwrap().iter() {
                    prop_assert!(!seen[g], "index {} owned twice", g);
                    seen[g] = true;
                    prop_assert_eq!(d.owner_coord(0, g).unwrap(), c);
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
