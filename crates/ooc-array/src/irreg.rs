//! Inspector–executor for irregular (indirection-array) accesses.
//!
//! Affine accesses let the compiler enumerate every rank's file regions
//! statically; an `A(idx(i))`-style gather cannot — the regions depend on
//! runtime data. The classic answer (and the original motivation for
//! two-phase collective I/O) is the inspector–executor split: the
//! **inspector** reads the indirection array once, bins every target by its
//! owning rank, exchanges the per-owner want-lists, and coalesces each
//! owner's serve-list into [`ByteRun`]s; the resulting [`IrregSchedule`] is
//! serialisable and reusable across iterations, so its cost amortizes. The
//! **executor** ([`gather_with`]) then drives the schedule through any of
//! the three access methods — direct piece-wise reads, data sieving, or a
//! two-phase union read + all-to-all — and [`irreg_counts`] replays each
//! schedule's request arithmetic exactly, so estimate == measured holds for
//! the inspected schedule just as it does for the affine paths.

use dmsim::{Payload, ProcCtx, Tag};
use pario::{plan_union, ByteRun, IoCharge, IoMethod};
use serde::{Deserialize, Serialize};

use crate::error::OocError;
use crate::localize::global_to_local;
use crate::ocla::{ArrayDesc, OocEnv};
use crate::section::Section;

/// Tag used by the executor's point-to-point gather messages.
const IRREG_TAG: Tag = Tag(0x16A7);

/// Magic line of the serialised schedule format.
const SCHED_MAGIC: &str = "oochpf-irreg 1";

/// Fingerprint of the descriptor pair a schedule indexes: any change to
/// shape, distribution or file layout changes the digest.
fn desc_digest(data: &ArrayDesc, index: &ArrayDesc) -> u64 {
    fnv1a(
        format!("{data:?}|{index:?}")
            .into_bytes()
            .into_iter()
            .map(|b| b as u64),
    )
}

/// FNV-1a over a u64 stream — the schedule's cheap content fingerprint.
fn fnv1a(values: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// What an [`IrregSchedule`] was inspected against. A cached schedule is
/// only valid while every ingredient the inspector consumed is unchanged:
/// the data array's descriptor (distribution *and* file layout — either
/// moves bytes), the indirection array's descriptor, the processor count,
/// and the indirection contents themselves (fingerprinted per rank).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStamp {
    /// Descriptor of the gathered (data) array.
    pub data: ArrayDesc,
    /// Descriptor of the indirection array.
    pub index: ArrayDesc,
    /// Rank the schedule was inspected on.
    pub rank: usize,
    /// Processor count of the inspecting machine.
    pub nprocs: usize,
    /// FNV-1a fingerprint of this rank's local indirection values.
    pub index_hash: u64,
}

/// The cached product of one inspection on one rank: where every gathered
/// element lives, which peers serve it, and the coalesced byte runs this
/// rank must service for each peer. Serialisable, so schedules can be
/// persisted next to the arrays they index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrregSchedule {
    /// Validity stamp — see [`ScheduleStamp`].
    pub stamp: ScheduleStamp,
    /// Gather output length: this rank's local indirection entries.
    pub nout: usize,
    /// Per output element: `(owner peer, slot in that peer's payload)`.
    pub out_slot: Vec<(u32, u32)>,
    /// Per peer `j`: distinct element offsets (ascending) this rank wants
    /// from `j`'s local data file. Payloads arrive in exactly this order.
    pub want: Vec<Vec<u64>>,
    /// Per peer `j`: distinct element offsets (ascending) of *this* rank's
    /// local data file that `j` wants — the pack order of outgoing payloads.
    pub serve_elems: Vec<Vec<u64>>,
    /// Per peer `j`: the coalesced byte runs covering `serve_elems[j]`.
    pub serve_runs: Vec<Vec<ByteRun>>,
}

impl IrregSchedule {
    /// True while this schedule may be reused without re-inspection:
    /// descriptors and machine shape unchanged. The indirection *contents*
    /// are only fingerprinted — callers that rewrite the indirection array
    /// must re-run [`inspect`] (or compare hashes themselves).
    pub fn is_valid_for(
        &self,
        data: &ArrayDesc,
        index: &ArrayDesc,
        rank: usize,
        nprocs: usize,
    ) -> bool {
        self.stamp.data == *data
            && self.stamp.index == *index
            && self.stamp.rank == rank
            && self.stamp.nprocs == nprocs
    }

    /// Serialise to a self-describing byte format (version-tagged text
    /// header + u64 lists), suitable for caching a schedule on disk next
    /// to the arrays it indexes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = String::new();
        s.push_str(SCHED_MAGIC);
        s.push('\n');
        s.push_str(&format!(
            "data={} index={} rank={} nprocs={} hash={} digest={} nout={}\n",
            self.stamp.data.name,
            self.stamp.index.name,
            self.stamp.rank,
            self.stamp.nprocs,
            self.stamp.index_hash,
            desc_digest(&self.stamp.data, &self.stamp.index),
            self.nout,
        ));
        let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        s.push_str(&format!(
            "out_slot={}\n",
            self.out_slot
                .iter()
                .map(|&(p, i)| format!("{p}:{i}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
        for (label, lists) in [("want", &self.want), ("serve_elems", &self.serve_elems)] {
            for (j, l) in lists.iter().enumerate() {
                s.push_str(&format!("{label}[{j}]={}\n", join(l)));
            }
        }
        for (j, runs) in self.serve_runs.iter().enumerate() {
            s.push_str(&format!(
                "serve_runs[{j}]={}\n",
                runs.iter()
                    .map(|r| format!("{}:{}", r.offset, r.len))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        s.into_bytes()
    }

    /// Reconstruct a schedule serialised by [`Self::to_bytes`]. The caller
    /// supplies the descriptors the schedule indexes (like
    /// [`crate::persist::import_array`], the format validates against them
    /// rather than storing them); a digest mismatch means the arrays moved
    /// since the schedule was cached, and the schedule is rejected.
    pub fn from_bytes(
        data: &ArrayDesc,
        index: &ArrayDesc,
        bytes: &[u8],
    ) -> Result<IrregSchedule, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        let mut lines = text.lines();
        if lines.next() != Some(SCHED_MAGIC) {
            return Err("not an irregular-schedule file".into());
        }
        let head = lines.next().ok_or("truncated schedule header")?;
        let mut fields = std::collections::HashMap::new();
        for kv in head.split_whitespace() {
            let (k, v) = kv.split_once('=').ok_or("malformed schedule header")?;
            fields.insert(k, v);
        }
        let get = |k: &str| -> Result<u64, String> {
            fields
                .get(k)
                .ok_or(format!("missing header field {k}"))?
                .parse()
                .map_err(|e| format!("bad header field {k}: {e}"))
        };
        if fields.get("data") != Some(&data.name.as_str())
            || fields.get("index") != Some(&index.name.as_str())
        {
            return Err("schedule names a different array pair".into());
        }
        if get("digest")? != desc_digest(data, index) {
            return Err("descriptors changed since the schedule was cached".into());
        }
        let rank = get("rank")? as usize;
        let nprocs = get("nprocs")? as usize;
        let nout = get("nout")? as usize;
        let index_hash = get("hash")?;

        let parse_list = |s: &str| -> Result<Vec<u64>, String> {
            if s.is_empty() {
                return Ok(Vec::new());
            }
            s.split(',')
                .map(|t| t.parse().map_err(|e| format!("bad list entry: {e}")))
                .collect()
        };
        let mut out_slot = Vec::new();
        let mut want = vec![Vec::new(); nprocs];
        let mut serve_elems = vec![Vec::new(); nprocs];
        let mut serve_runs = vec![Vec::new(); nprocs];
        for line in lines {
            let (key, val) = line.split_once('=').ok_or("malformed schedule line")?;
            if key == "out_slot" {
                for t in val.split(',').filter(|t| !t.is_empty()) {
                    let (p, i) = t.split_once(':').ok_or("malformed out_slot pair")?;
                    out_slot.push((
                        p.parse().map_err(|e| format!("bad peer: {e}"))?,
                        i.parse().map_err(|e| format!("bad slot: {e}"))?,
                    ));
                }
            } else if let Some(j) = key.strip_prefix("want[").and_then(|r| r.strip_suffix(']')) {
                let j: usize = j.parse().map_err(|e| format!("bad peer index: {e}"))?;
                *want.get_mut(j).ok_or("peer out of range")? = parse_list(val)?;
            } else if let Some(j) = key
                .strip_prefix("serve_elems[")
                .and_then(|r| r.strip_suffix(']'))
            {
                let j: usize = j.parse().map_err(|e| format!("bad peer index: {e}"))?;
                *serve_elems.get_mut(j).ok_or("peer out of range")? = parse_list(val)?;
            } else if let Some(j) = key
                .strip_prefix("serve_runs[")
                .and_then(|r| r.strip_suffix(']'))
            {
                let j: usize = j.parse().map_err(|e| format!("bad peer index: {e}"))?;
                let mut runs = Vec::new();
                for t in val.split(',').filter(|t| !t.is_empty()) {
                    let (o, l) = t.split_once(':').ok_or("malformed run")?;
                    runs.push(ByteRun {
                        offset: o.parse().map_err(|e| format!("bad offset: {e}"))?,
                        len: l.parse().map_err(|e| format!("bad len: {e}"))?,
                    });
                }
                *serve_runs.get_mut(j).ok_or("peer out of range")? = runs;
            } else {
                return Err(format!("unknown schedule line key {key:?}"));
            }
        }
        if out_slot.len() != nout {
            return Err("out_slot length mismatches nout".into());
        }
        Ok(IrregSchedule {
            stamp: ScheduleStamp {
                data: data.clone(),
                index: index.clone(),
                rank,
                nprocs,
                index_hash,
            },
            nout,
            out_slot,
            want,
            serve_elems,
            serve_runs,
        })
    }

    /// Run-length statistics of the inspected index set, as one flat u64
    /// vector so ranks can allreduce them into identical global statistics
    /// (the runtime method selector must make the same choice everywhere).
    /// Layout: see [`crate::irreg::IrregStats`] field order.
    pub fn stats(&self) -> IrregStats {
        let me = self.stamp.rank;
        let es = self.stamp.data.elem.size() as u64;
        let mut s = IrregStats {
            nprocs: self.stamp.nprocs as u64,
            index_elems: self.nout as u64,
            index_requests: if self.nout > 0 { 1 } else { 0 },
            gather_elems: self.nout as u64,
            ..IrregStats::default()
        };
        for (j, elems) in self.serve_elems.iter().enumerate() {
            if elems.is_empty() {
                continue;
            }
            s.serve_elems += elems.len() as u64;
            s.serve_runs += self.serve_runs[j].len() as u64;
            s.peers_with_data += 1;
            let lo = self.serve_runs[j].first().expect("non-empty runs").offset;
            let hi = self.serve_runs[j].last().expect("non-empty runs").end();
            s.span_bytes += hi - lo;
            if j != me {
                s.remote_served_elems += elems.len() as u64;
            }
        }
        for (j, w) in self.want.iter().enumerate() {
            if j != me {
                s.remote_want_elems += w.len() as u64;
            }
        }
        let union = plan_union(&self.serve_runs);
        s.union_runs = union.requests();
        s.union_bytes = union.bytes();
        s.elem_size = es;
        s
    }
}

/// Sufficient statistics of an inspected index set: everything the cost
/// model needs to price the inspector and all three executor methods.
/// All fields are u64 so a set of per-rank stats can be summed with one
/// `allreduce` into machine-global statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IrregStats {
    /// Processor count (take `max` when merging, not sum).
    pub nprocs: u64,
    /// Element size of the data array in bytes (merge: max).
    pub elem_size: u64,
    /// Indirection entries the inspector reads on this rank.
    pub index_elems: u64,
    /// Requests that indirection read issues.
    pub index_requests: u64,
    /// Gathered output elements (== `index_elems`: one per entry).
    pub gather_elems: u64,
    /// Distinct local data elements this rank serves, over all peers.
    pub serve_elems: u64,
    /// Coalesced serve runs over all peers — the direct read request count.
    pub serve_runs: u64,
    /// Peers (self included) with a non-empty serve list — the sieved
    /// request count, one spanning read per peer.
    pub peers_with_data: u64,
    /// Total bytes of those per-peer sieve spans.
    pub span_bytes: u64,
    /// Runs in the union of every peer's serve runs — the two-phase
    /// request count.
    pub union_runs: u64,
    /// Bytes the union read moves.
    pub union_bytes: u64,
    /// Distinct elements this rank sends to *other* ranks (direct/sieved
    /// message payload; two-phase moves the same bytes via all-to-all).
    pub remote_served_elems: u64,
    /// Distinct elements this rank requests from other ranks (the
    /// inspector's want-list exchange payload, 8 bytes each).
    pub remote_want_elems: u64,
}

impl IrregStats {
    /// Merge another rank's stats into machine-global totals.
    pub fn merge(&mut self, other: &IrregStats) {
        self.nprocs = self.nprocs.max(other.nprocs);
        self.elem_size = self.elem_size.max(other.elem_size);
        self.index_elems += other.index_elems;
        self.index_requests += other.index_requests;
        self.gather_elems += other.gather_elems;
        self.serve_elems += other.serve_elems;
        self.serve_runs += other.serve_runs;
        self.peers_with_data += other.peers_with_data;
        self.span_bytes += other.span_bytes;
        self.union_runs += other.union_runs;
        self.union_bytes += other.union_bytes;
        self.remote_served_elems += other.remote_served_elems;
        self.remote_want_elems += other.remote_want_elems;
    }

    /// Flatten for an `allreduce` (field order is the struct order).
    pub fn to_vec(&self) -> Vec<u64> {
        vec![
            self.nprocs,
            self.elem_size,
            self.index_elems,
            self.index_requests,
            self.gather_elems,
            self.serve_elems,
            self.serve_runs,
            self.peers_with_data,
            self.span_bytes,
            self.union_runs,
            self.union_bytes,
            self.remote_served_elems,
            self.remote_want_elems,
        ]
    }

    /// Inverse of [`Self::to_vec`]. `nprocs`/`elem_size` arrive summed from
    /// an allreduce; divide by the rank count before calling, or pass the
    /// true values back in afterwards.
    pub fn from_vec(v: &[u64]) -> IrregStats {
        IrregStats {
            nprocs: v[0],
            elem_size: v[1],
            index_elems: v[2],
            index_requests: v[3],
            gather_elems: v[4],
            serve_elems: v[5],
            serve_runs: v[6],
            peers_with_data: v[7],
            span_bytes: v[8],
            union_runs: v[9],
            union_bytes: v[10],
            remote_served_elems: v[11],
            remote_want_elems: v[12],
        }
    }
}

/// Run the inspector: read this rank's slice of the indirection array once
/// (charged), bin each target by its owning rank, exchange the per-owner
/// want-lists (one u64 all-to-all), and coalesce every incoming want-list
/// into the byte runs this rank will service. Collective — every rank must
/// call it with the same descriptors.
///
/// Both arrays must be one-dimensional (the paper's `A(idx(i))` shape);
/// indirection values are global element indices stored as `f32` and must
/// lie in `[0, n)`.
pub fn inspect(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    data: &ArrayDesc,
    index: &ArrayDesc,
    charge: &dyn IoCharge,
) -> Result<IrregSchedule, OocError> {
    assert_eq!(data.global_shape().ndims(), 1, "inspect: 1-D data arrays");
    assert_eq!(index.global_shape().ndims(), 1, "inspect: 1-D index arrays");
    let me = ctx.rank();
    let p = ctx.nprocs();
    assert_eq!(data.dist.nprocs(), p, "inspect: machine/distribution shape");
    let _span = ctx.trace_span(ooc_trace::Category::Inspector, "inspect");

    // Read the local indirection slice once — the whole point of caching
    // the schedule is never paying this again while it stays valid.
    let local_shape = index.local_shape(me);
    let vals = if local_shape.is_empty() {
        Vec::new()
    } else {
        env.read_section(index, &Section::full(&local_shape), charge)?
    };
    let n = data.global_shape().extent(0);
    let index_hash = fnv1a(vals.iter().map(|v| *v as u64));

    // Bin every target by owner; collapse duplicates to one wire slot.
    let mut want: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut targets = Vec::with_capacity(vals.len());
    for v in &vals {
        let g = *v as usize;
        assert!(g < n, "indirection value {g} out of range 0..{n}");
        let (owner, local) = global_to_local(&data.dist, &[g]);
        targets.push((owner as u32, local[0] as u64));
        want[owner].push(local[0] as u64);
    }
    for w in &mut want {
        w.sort_unstable();
        w.dedup();
    }
    let out_slot = targets
        .iter()
        .map(|&(owner, off)| {
            let slot = want[owner as usize]
                .binary_search(&off)
                .expect("dedup kept every wanted offset");
            (owner, slot as u32)
        })
        .collect();

    // Tell every owner what we want from it; learn what we must serve.
    let serve_elems = ctx.try_alltoallv::<u64>(want.clone())?;
    let es = data.elem.size() as u64;
    let serve_runs = serve_elems
        .iter()
        .map(|elems| {
            let unit: Vec<ByteRun> = elems
                .iter()
                .map(|&off| ByteRun::new(off * es, es))
                .collect();
            pario::coalesce_runs(&unit)
        })
        .collect();

    Ok(IrregSchedule {
        stamp: ScheduleStamp {
            data: data.clone(),
            index: index.clone(),
            rank: me,
            nprocs: p,
            index_hash,
        },
        nout: vals.len(),
        out_slot,
        want,
        serve_elems,
        serve_runs,
    })
}

/// Execute a cached schedule: gather `data[idx[i]]` for every local
/// indirection entry, returning the values in entry order. Collective —
/// every rank drives its own schedule with the same `method`.
///
/// * `Direct` — one read per coalesced serve run, one message per peer
///   with data.
/// * `Sieved` — one spanning read per peer with data (trading bytes for
///   requests), same messages as direct.
/// * `TwoPhase` — one coalesced union read covering every peer's serve
///   list, then an all-to-all exchange.
///
/// All three produce identical outputs; they differ only in the request and
/// message schedule, which [`irreg_counts`] replays exactly.
pub fn gather_with(
    ctx: &ProcCtx,
    env: &mut OocEnv,
    sched: &IrregSchedule,
    method: IoMethod,
    charge: &dyn IoCharge,
) -> Result<Vec<f32>, OocError> {
    let me = ctx.rank();
    let p = ctx.nprocs();
    assert!(
        sched.is_valid_for(&sched.stamp.data, &sched.stamp.index, me, p),
        "gather_with: schedule inspected on a different rank or machine"
    );
    let data = &sched.stamp.data;
    let _m = ctx.trace_io_method(method.label());
    let _span = ctx.trace_span(ooc_trace::Category::Gather, "gather");

    // Serve phase: read what each peer wants and ship it (keep our own).
    let mut local_part: Vec<f32> = Vec::new();
    match method {
        IoMethod::Direct | IoMethod::Sieved => {
            for (j, runs) in sched.serve_runs.iter().enumerate() {
                if runs.is_empty() {
                    continue;
                }
                let bytes = match method {
                    // One request per coalesced run, exact bytes.
                    IoMethod::Direct => env.read_byte_runs(data, runs, charge)?,
                    // One spanning request, unwanted bytes discarded here.
                    IoMethod::Sieved => {
                        let lo = runs.first().expect("non-empty").offset;
                        let hi = runs.last().expect("non-empty").end();
                        let span =
                            env.read_byte_runs(data, &[ByteRun::new(lo, hi - lo)], charge)?;
                        let mut picked =
                            Vec::with_capacity(runs.iter().map(|r| r.len as usize).sum());
                        for r in runs {
                            let s = (r.offset - lo) as usize;
                            picked.extend_from_slice(&span[s..s + r.len as usize]);
                        }
                        picked
                    }
                    IoMethod::TwoPhase => unreachable!(),
                };
                let vals = pario::bytes_to_f32(&bytes)?;
                if j == me {
                    local_part = vals;
                } else {
                    ctx.send(j, IRREG_TAG, Payload::F32(vals));
                }
            }
        }
        IoMethod::TwoPhase => {
            let plan = plan_union(&sched.serve_runs);
            let union_buf = if plan.buffer_len() > 0 {
                env.read_byte_runs(data, &plan.union, charge)?
            } else {
                Vec::new()
            };
            let mut sends: Vec<Vec<f32>> = Vec::with_capacity(p);
            for j in 0..p {
                if sched.serve_runs[j].is_empty() {
                    sends.push(Vec::new());
                } else {
                    sends.push(pario::bytes_to_f32(&plan.carve(j, &union_buf))?);
                }
            }
            let mut received = {
                let _x = ctx.trace_span(ooc_trace::Category::Exchange, "exchange");
                ctx.try_alltoallv::<f32>(sends)?
            };
            // Receive-side assembly happens below from `got`; stash every
            // peer's payload now (the all-to-all already delivered them).
            let mut got: Vec<Vec<f32>> = Vec::with_capacity(p);
            for (j, payload) in received.iter_mut().enumerate() {
                assert_eq!(
                    payload.len(),
                    sched.want[j].len(),
                    "two-phase gather payload size from peer {j}"
                );
                got.push(std::mem::take(payload));
            }
            return Ok(assemble(sched, got));
        }
    }

    // Receive phase (direct/sieved): one message per peer we want from.
    let mut got: Vec<Vec<f32>> = vec![Vec::new(); p];
    got[me] = local_part;
    for (j, slot) in got.iter_mut().enumerate() {
        if j == me || sched.want[j].is_empty() {
            continue;
        }
        let vals = ctx.try_recv_f32(j, IRREG_TAG)?;
        assert_eq!(vals.len(), sched.want[j].len(), "gather payload size");
        *slot = vals;
    }
    Ok(assemble(sched, got))
}

/// Place every received slot at its output positions (entry order).
fn assemble(sched: &IrregSchedule, got: Vec<Vec<f32>>) -> Vec<f32> {
    sched
        .out_slot
        .iter()
        .map(|&(peer, slot)| got[peer as usize][slot as usize])
        .collect()
}

/// Predicted I/O and message traffic of one executor invocation on this
/// schedule's rank — an exact replay of [`gather_with`]'s request
/// arithmetic (same runs, same union planner, same span arithmetic), so
/// estimate == measurement holds by construction for every method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IrregCounts {
    /// Disk read requests issued against the data array on this rank.
    pub read_requests: u64,
    /// Bytes those reads move (sieved spans count whole).
    pub read_bytes: u64,
    /// Messages this rank sends.
    pub messages: u64,
    /// Payload bytes this rank sends.
    pub msg_bytes: u64,
}

/// Replay the request schedule of `gather_with(.., method, ..)` without
/// touching any data.
pub fn irreg_counts(sched: &IrregSchedule, method: IoMethod) -> IrregCounts {
    let me = sched.stamp.rank;
    let es = sched.stamp.data.elem.size() as u64;
    let mut c = IrregCounts::default();
    match method {
        IoMethod::Direct => {
            for (j, runs) in sched.serve_runs.iter().enumerate() {
                if runs.is_empty() {
                    continue;
                }
                c.read_requests += runs.len() as u64;
                c.read_bytes += runs.iter().map(|r| r.len).sum::<u64>();
                if j != me {
                    c.messages += 1;
                    c.msg_bytes += sched.serve_elems[j].len() as u64 * es;
                }
            }
        }
        IoMethod::Sieved => {
            for (j, runs) in sched.serve_runs.iter().enumerate() {
                if runs.is_empty() {
                    continue;
                }
                let lo = runs.first().expect("non-empty").offset;
                let hi = runs.last().expect("non-empty").end();
                c.read_requests += 1;
                c.read_bytes += hi - lo;
                if j != me {
                    c.messages += 1;
                    c.msg_bytes += sched.serve_elems[j].len() as u64 * es;
                }
            }
        }
        IoMethod::TwoPhase => {
            let plan = plan_union(&sched.serve_runs);
            c.read_requests = plan.requests();
            c.read_bytes = plan.bytes();
            // alltoallv posts to every peer, empty pieces included.
            c.messages = sched.stamp.nprocs.saturating_sub(1) as u64;
            for (j, elems) in sched.serve_elems.iter().enumerate() {
                if j != me {
                    c.msg_bytes += elems.len() as u64 * es;
                }
            }
        }
    }
    c
}

/// Replay the inspector's own request schedule for this rank: the one
/// charged indirection read plus the want-list all-to-all.
pub fn inspect_counts(sched: &IrregSchedule) -> IrregCounts {
    let me = sched.stamp.rank;
    let es = sched.stamp.index.elem.size() as u64;
    let mut c = IrregCounts::default();
    if sched.nout > 0 {
        let local = sched.stamp.index.local_shape(me);
        c.read_requests = sched
            .stamp
            .index
            .layout
            .count_section_runs(&local, &Section::full(&local));
        c.read_bytes = sched.nout as u64 * es;
    }
    c.messages = sched.stamp.nprocs.saturating_sub(1) as u64;
    for (j, w) in sched.want.iter().enumerate() {
        if j != me {
            c.msg_bytes += w.len() as u64 * 8;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{DimDist, DistKind, Distribution, ProcGrid};
    use crate::ocla::ArrayId;
    use crate::shape::Shape;
    use dmsim::{Machine, MachineConfig};
    use pario::{ElemKind, NoCharge};

    fn vec_dist(n: usize, p: usize) -> Distribution {
        Distribution::new(
            Shape::new(vec![n]),
            vec![DimDist::Distributed {
                kind: DistKind::Block,
                axis: 0,
            }],
            ProcGrid::line(p),
        )
    }

    fn descs(n: usize, nidx: usize, p: usize) -> (ArrayDesc, ArrayDesc) {
        let x = ArrayDesc::new(ArrayId(0), "x", ElemKind::F32, vec_dist(n, p));
        let idx = ArrayDesc::new(ArrayId(1), "idx", ElemKind::F32, vec_dist(nidx, p));
        (x, idx)
    }

    /// A scattered-but-deterministic index stream with repeats.
    fn index_value(g: usize, n: usize) -> usize {
        (g * 37 + (g / 3) * 11) % n
    }

    fn run_gather(n: usize, nidx: usize, p: usize, method: IoMethod) -> Vec<(usize, Vec<f32>)> {
        let (x, idx) = descs(n, nidx, p);
        let machine = Machine::new(MachineConfig::free(p));
        let outs = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let outs_c = std::sync::Arc::clone(&outs);
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&x).unwrap();
            env.alloc(&idx).unwrap();
            env.load_global(&x, &|g: &[usize]| g[0] as f32 * 0.5)
                .unwrap();
            env.load_global(&idx, &|g: &[usize]| index_value(g[0], n) as f32)
                .unwrap();

            let sched = inspect(ctx, &mut env, &x, &idx, &NoCharge).unwrap();
            let before = env.disk().stats();
            let out = gather_with(ctx, &mut env, &sched, method, &NoCharge).unwrap();
            let after = env.disk().stats();

            // Exact replay: measured disk deltas equal the counts.
            let c = irreg_counts(&sched, method);
            assert_eq!(
                after.read_requests - before.read_requests,
                c.read_requests,
                "{method:?} rank {} read requests",
                ctx.rank()
            );
            assert_eq!(
                after.bytes_read - before.bytes_read,
                c.read_bytes,
                "{method:?} rank {} read bytes",
                ctx.rank()
            );

            outs_c.lock().unwrap().push((ctx.rank(), out));
        });
        let mut v = std::sync::Arc::try_unwrap(outs)
            .unwrap()
            .into_inner()
            .unwrap();
        v.sort_by_key(|(r, _)| *r);
        v
    }

    #[test]
    fn every_method_gathers_the_right_values_and_matches_its_replay() {
        let (n, nidx, p) = (48, 96, 3);
        for method in IoMethod::ALL {
            let outs = run_gather(n, nidx, p, method);
            for (rank, out) in &outs {
                let (_, idx) = descs(n, nidx, p);
                let local = idx.local_shape(*rank);
                assert_eq!(out.len(), local.extent(0), "{method:?}");
                for (k, v) in out.iter().enumerate() {
                    let g = crate::localize::local_to_global(&idx.dist, *rank, &[k]);
                    let want = index_value(g[0], n) as f32 * 0.5;
                    assert_eq!(*v, want, "{method:?} rank {rank} entry {k}");
                }
            }
        }
    }

    #[test]
    fn methods_agree_bitwise() {
        let (n, nidx, p) = (40, 80, 4);
        let direct = run_gather(n, nidx, p, IoMethod::Direct);
        for method in [IoMethod::Sieved, IoMethod::TwoPhase] {
            assert_eq!(run_gather(n, nidx, p, method), direct, "{method:?}");
        }
    }

    #[test]
    fn two_phase_issues_no_more_requests_than_direct() {
        let (n, nidx, p) = (64, 128, 4);
        let (x, idx) = descs(n, nidx, p);
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&x).unwrap();
            env.alloc(&idx).unwrap();
            env.load_global(&x, &|g: &[usize]| g[0] as f32).unwrap();
            env.load_global(&idx, &|g: &[usize]| index_value(g[0], n) as f32)
                .unwrap();
            let sched = inspect(ctx, &mut env, &x, &idx, &NoCharge).unwrap();
            let d = irreg_counts(&sched, IoMethod::Direct);
            let t = irreg_counts(&sched, IoMethod::TwoPhase);
            assert!(t.read_requests <= d.read_requests);
            assert!(t.read_bytes <= d.read_bytes, "union never over-reads");
        });
    }

    #[test]
    fn schedule_reuse_skips_the_indirection_read() {
        let (n, nidx, p) = (32, 64, 2);
        let (x, idx) = descs(n, nidx, p);
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&x).unwrap();
            env.alloc(&idx).unwrap();
            env.load_global(&x, &|g: &[usize]| g[0] as f32).unwrap();
            env.load_global(&idx, &|g: &[usize]| index_value(g[0], n) as f32)
                .unwrap();
            let sched = inspect(ctx, &mut env, &x, &idx, &NoCharge).unwrap();
            assert!(sched.is_valid_for(&x, &idx, ctx.rank(), ctx.nprocs()));

            // Reusing across iterations: the executor alone never touches
            // the indirection file.
            let a = gather_with(ctx, &mut env, &sched, IoMethod::TwoPhase, &NoCharge).unwrap();
            let b = gather_with(ctx, &mut env, &sched, IoMethod::TwoPhase, &NoCharge).unwrap();
            assert_eq!(a, b);
            let ic = inspect_counts(&sched);
            assert!(ic.read_bytes > 0, "inspector pays the indirection read");

            // A different data distribution invalidates the stamp.
            let moved = ArrayDesc::new(
                ArrayId(0),
                "x",
                ElemKind::F32,
                Distribution::new(
                    Shape::new(vec![n]),
                    vec![DimDist::Distributed {
                        kind: DistKind::Cyclic,
                        axis: 0,
                    }],
                    ProcGrid::line(ctx.nprocs()),
                ),
            );
            assert!(!sched.is_valid_for(&moved, &idx, ctx.rank(), ctx.nprocs()));
        });
    }

    #[test]
    fn schedules_serialize_and_round_trip() {
        let (n, nidx, p) = (16, 32, 2);
        let (x, idx) = descs(n, nidx, p);
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&x).unwrap();
            env.alloc(&idx).unwrap();
            env.load_global(&x, &|g: &[usize]| g[0] as f32).unwrap();
            env.load_global(&idx, &|g: &[usize]| index_value(g[0], n) as f32)
                .unwrap();
            let sched = inspect(ctx, &mut env, &x, &idx, &NoCharge).unwrap();
            let bytes = sched.to_bytes();
            let back = IrregSchedule::from_bytes(&x, &idx, &bytes).unwrap();
            assert_eq!(back, sched);
            // A distribution change invalidates the cached bytes.
            let moved = ArrayDesc::new(
                ArrayId(0),
                "x",
                ElemKind::F32,
                Distribution::new(
                    Shape::new(vec![n]),
                    vec![DimDist::Distributed {
                        kind: DistKind::Cyclic,
                        axis: 0,
                    }],
                    ProcGrid::line(ctx.nprocs()),
                ),
            );
            let err = IrregSchedule::from_bytes(&moved, &idx, &bytes).unwrap_err();
            assert!(err.contains("changed"), "{err}");
        });
    }

    #[test]
    fn repeated_indices_collapse_to_one_wire_slot() {
        // Every entry points at element 0: one distinct target per rank's
        // want list, and the union charges its bytes once.
        let (n, nidx, p) = (16, 64, 2);
        let (x, idx) = descs(n, nidx, p);
        let machine = Machine::new(MachineConfig::free(p));
        machine.run(move |ctx| {
            let mut env = OocEnv::in_memory(ctx.rank());
            env.alloc(&x).unwrap();
            env.alloc(&idx).unwrap();
            env.load_global(&x, &|g: &[usize]| g[0] as f32 + 7.0)
                .unwrap();
            env.load_global(&idx, &|_: &[usize]| 0.0).unwrap();
            let sched = inspect(ctx, &mut env, &x, &idx, &NoCharge).unwrap();
            let owner_want: usize = sched.want.iter().map(Vec::len).sum();
            assert_eq!(owner_want, 1, "duplicates must dedup on the wire");
            let c = irreg_counts(&sched, IoMethod::TwoPhase);
            if ctx.rank() == 0 {
                assert_eq!(c.read_bytes, 4, "element 0 charged once");
            } else {
                assert_eq!(c.read_bytes, 0);
            }
            let out = gather_with(ctx, &mut env, &sched, IoMethod::Direct, &NoCharge).unwrap();
            assert!(out.iter().all(|v| *v == 7.0));
            assert_eq!(out.len(), nidx / p);
        });
    }
}
