//! Array shapes and column-major index arithmetic.

use serde::{Deserialize, Serialize};

/// The extents of an n-dimensional array.
///
/// Linearization is Fortran column-major: dimension 0 varies fastest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Shape from extents. Zero-extent dimensions are allowed (empty array).
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape { dims: dims.into() }
    }

    /// 2-D convenience: `rows` × `cols` (dimension 0 = rows).
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape::new(vec![rows, cols])
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `d`.
    pub fn extent(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// All extents.
    pub fn extents(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column-major strides: `stride[0] = 1`, `stride[d] = Π extents[..d]`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1; self.dims.len()];
        for d in 1..self.dims.len() {
            s[d] = s[d - 1] * self.dims[d - 1];
        }
        s
    }

    /// Linear offset of a multi-index (column-major).
    pub fn linear(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len());
        let mut off = 0;
        let mut stride = 1;
        for (d, &i) in index.iter().enumerate() {
            debug_assert!(
                i < self.dims[d],
                "index {i} out of bounds for dim {d} (extent {})",
                self.dims[d]
            );
            off += i * stride;
            stride *= self.dims[d];
        }
        off
    }

    /// Multi-index of a linear offset (column-major).
    pub fn unlinear(&self, mut off: usize) -> Vec<usize> {
        debug_assert!(off < self.len().max(1));
        let mut idx = vec![0; self.dims.len()];
        for (d, &e) in self.dims.iter().enumerate() {
            if e == 0 {
                return idx;
            }
            idx[d] = off % e;
            off /= e;
        }
        idx
    }

    /// Iterate all multi-indices in column-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: self.dims.clone(),
            next: if self.is_empty() {
                None
            } else {
                Some(vec![0; self.dims.len()])
            },
        }
    }
}

/// Iterator over multi-indices in column-major order.
#[derive(Debug)]
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance like an odometer, dimension 0 fastest.
        let mut idx = current.clone();
        let mut d = 0;
        loop {
            if d == self.shape.len() {
                self.next = None;
                break;
            }
            idx[d] += 1;
            if idx[d] < self.shape[d] {
                self.next = Some(idx);
                break;
            }
            idx[d] = 0;
            d += 1;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matrix_shape_basics() {
        let s = Shape::matrix(4, 6);
        assert_eq!(s.ndims(), 2);
        assert_eq!(s.extent(0), 4);
        assert_eq!(s.extent(1), 6);
        assert_eq!(s.len(), 24);
        assert_eq!(s.strides(), vec![1, 4]);
    }

    #[test]
    fn column_major_linearization() {
        let s = Shape::matrix(4, 6);
        assert_eq!(s.linear(&[0, 0]), 0);
        assert_eq!(s.linear(&[1, 0]), 1); // down a column first
        assert_eq!(s.linear(&[0, 1]), 4);
        assert_eq!(s.linear(&[3, 5]), 23);
    }

    #[test]
    fn indices_visit_all_in_cm_order() {
        let s = Shape::matrix(2, 3);
        let all: Vec<_> = s.indices().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![0, 1],
                vec![1, 1],
                vec![0, 2],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn empty_shape_iterates_nothing() {
        let s = Shape::new(vec![3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.indices().count(), 0);
    }

    #[test]
    fn three_d_linearization() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![1, 2, 6]);
        assert_eq!(s.linear(&[1, 2, 3]), 1 + 2 * 2 + 3 * 6);
    }

    proptest! {
        #[test]
        fn linear_unlinear_roundtrip(
            d0 in 1usize..6, d1 in 1usize..6, d2 in 1usize..6, seed in 0usize..1000
        ) {
            let s = Shape::new(vec![d0, d1, d2]);
            let off = seed % s.len();
            let idx = s.unlinear(off);
            prop_assert_eq!(s.linear(&idx), off);
        }

        #[test]
        fn indices_are_sequential_offsets(d0 in 1usize..5, d1 in 1usize..5) {
            let s = Shape::matrix(d0, d1);
            for (expect, idx) in s.indices().enumerate() {
                prop_assert_eq!(s.linear(&idx), expect);
            }
        }
    }
}
