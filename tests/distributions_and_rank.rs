//! Coverage beyond the paper's 2-D block examples: cyclic distributions and
//! 3-D arrays through the full compile-and-run path.

use noderun::{init_fn, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions, ExecPlan};

#[test]
fn cyclic_distribution_elementwise() {
    // A scaled copy over cyclically distributed matrices: localization uses
    // strided owned sections; no communication is needed (zero shifts).
    let n = 12;
    let src = format!(
        "
      parameter (n={n})
      real u(n, n), v(n, n)
!hpf$ processors pr(3)
!hpf$ distribute u(cyclic, *) on pr
!hpf$ distribute v(cyclic, *) on pr
      forall (i = 1:n, j = 1:n)
        v(i, j) = 3.0 * u(i, j) - 1.0
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    assert!(matches!(compiled.plans[0], ExecPlan::Elementwise(_)));
    let init = |g: &[usize]| (g[0] * 10 + g[1]) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(init));
    cfg.collect.push("v".into());
    let outcome = run(&compiled, &cfg).unwrap();
    let (shape, v) = &outcome.collected["v"];
    for j in 0..n {
        for i in 0..n {
            assert_eq!(
                v[shape.linear(&[i, j])],
                3.0 * init(&[i, j]) - 1.0,
                "({i},{j})"
            );
        }
    }
    assert_eq!(outcome.report.totals().msgs_sent, 0);
}

#[test]
fn cyclic_shift_is_rejected_with_explanation() {
    // Shifts along a cyclically distributed dimension would need non-
    // neighbor communication; the compiler must refuse, not miscompile.
    let src = "
      parameter (n=12)
      real u(n, n), v(n, n)
!hpf$ processors pr(3)
!hpf$ distribute u(cyclic, *) on pr
!hpf$ distribute v(cyclic, *) on pr
      forall (i = 2:n-1, j = 1:n)
        v(i, j) = u(i-1, j)
      end forall
      end
";
    // Either the planner rejects it or the run must still be correct;
    // we require rejection (ghost exchange assumes block neighbors).
    match compile_source(src, &CompilerOptions::default()) {
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty());
        }
        Ok(compiled) => {
            // If it compiled, it must compute the right answer.
            let n = 12;
            let init = |g: &[usize]| (g[0] * 7 + g[1]) as f32;
            let mut cfg = RunConfig::default();
            cfg.init.insert("u".into(), init_fn(init));
            cfg.init.insert("v".into(), init_fn(init));
            cfg.collect.push("v".into());
            let outcome = run(&compiled, &cfg).unwrap();
            let (shape, v) = &outcome.collected["v"];
            for j in 0..n {
                for i in 1..n - 1 {
                    assert_eq!(v[shape.linear(&[i, j])], init(&[i - 1, j]), "({i},{j})");
                }
            }
        }
    }
}

#[test]
fn mixed_distribution_elementwise_inserts_a_remap() {
    // v is column-block, u is row-block: the compiler must redistribute u
    // into a temporary before the statement (HPF's misaligned-operand
    // remap), and the result must still be exact.
    let n = 16;
    let src = format!(
        "
      parameter (n={n})
      real u(n, n), v(n, n)
!hpf$ processors pr(4)
!hpf$ distribute u(block, *) on pr
!hpf$ distribute v(*, block) on pr
      forall (i = 1:n, j = 1:n)
        v(i, j) = 2.0 * u(i, j) + 1.0
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let ExecPlan::Elementwise(e) = &compiled.plans[0] else {
        panic!("expected elementwise plan");
    };
    assert_eq!(e.pre_remaps.len(), 1);
    assert_eq!(e.pre_remaps[0].src.name, "u");
    assert_eq!(e.pre_remaps[0].tmp.dist, e.lhs.dist);

    let init = |g: &[usize]| (g[0] * 10 + g[1]) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(init));
    cfg.collect.push("v".into());
    let outcome = run(&compiled, &cfg).unwrap();
    let (shape, v) = &outcome.collected["v"];
    for j in 0..n {
        for i in 0..n {
            assert_eq!(v[shape.linear(&[i, j])], 2.0 * init(&[i, j]) + 1.0);
        }
    }
    // The remap really communicated.
    assert!(outcome.report.totals().msgs_sent > 0);
}

#[test]
fn mixed_distribution_stencil_with_shifts() {
    // Shifts are resolved against the *post-remap* (lhs) distribution: u is
    // row-block but v is column-block, so after the remap the shifts along
    // dim 0 are local and the ghost exchange runs along dim 1... which has
    // no shifts, so no ghosts at all.
    let n = 16;
    let src = format!(
        "
      parameter (n={n})
      real u(n, n), v(n, n)
!hpf$ processors pr(2)
!hpf$ distribute u(block, *) on pr
!hpf$ distribute v(*, block) on pr
      forall (i = 2:n-1, j = 1:n)
        v(i, j) = u(i-1, j) + u(i+1, j)
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let ExecPlan::Elementwise(e) = &compiled.plans[0] else {
        panic!()
    };
    assert_eq!(e.pre_remaps.len(), 1);
    assert!(
        e.ghosts.is_empty(),
        "shifts along a collapsed (post-remap) dim"
    );

    let init = |g: &[usize]| ((g[0] * 13 + g[1] * 7) % 23) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(init));
    cfg.init.insert("v".into(), init_fn(init));
    cfg.collect.push("v".into());
    let outcome = run(&compiled, &cfg).unwrap();
    let (shape, v) = &outcome.collected["v"];
    for j in 0..n {
        for i in 1..n - 1 {
            assert_eq!(
                v[shape.linear(&[i, j])],
                init(&[i - 1, j]) + init(&[i + 1, j]),
                "({i},{j})"
            );
        }
    }
}

#[test]
fn three_d_stencil_end_to_end() {
    // 3-D 6-point stencil over a block-distributed cube exercises the n-D
    // paths of sections, layouts, slabs and ghosts.
    let n = 10;
    let src = format!(
        "
      parameter (n={n})
      real u(n, n, n), v(n, n, n)
!hpf$ processors pr(2)
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1, k = 2:n-1)
        v(i, j, k) = u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let ExecPlan::Elementwise(e) = &compiled.plans[0] else {
        panic!("expected elementwise plan");
    };
    assert_eq!(e.ghosts.len(), 1);
    assert_eq!(e.ghosts[0].dim, 0);

    let init = |g: &[usize]| ((g[0] * 17 + g[1] * 5 + g[2]) % 23) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(init));
    cfg.collect.push("v".into());
    let outcome = run(&compiled, &cfg).unwrap();
    let (shape, v) = &outcome.collected["v"];
    for k in 1..n - 1 {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let expect = init(&[i - 1, j, k])
                    + init(&[i + 1, j, k])
                    + init(&[i, j - 1, k])
                    + init(&[i, j + 1, k])
                    + init(&[i, j, k - 1])
                    + init(&[i, j, k + 1]);
                assert_eq!(v[shape.linear(&[i, j, k])], expect, "({i},{j},{k})");
            }
        }
    }
}

#[test]
fn block_cyclic_declaration_is_analyzable() {
    // cyclic(b) parses and analyzes; plans over block-cyclic locals are
    // rejected cleanly (irregular local sections), never miscompiled.
    let src = "
      parameter (n=16)
      real u(n), v(n)
!hpf$ processors pr(2)
!hpf$ distribute u(cyclic(4)) on pr
!hpf$ distribute v(cyclic(4)) on pr
      forall (i = 1:n)
        v(i) = u(i)
      end forall
      end
";
    let prog = hpf::parse_program(src).unwrap();
    let info = hpf::analyze(&prog).unwrap();
    assert_eq!(info.nprocs, 2);
    // Plan construction over block-cyclic is out of the regular-section
    // subset; accept either a clean error or a correct run.
    match compile_source(src, &CompilerOptions::default()) {
        Err(_) => {}
        Ok(compiled) => {
            let mut cfg = RunConfig::default();
            cfg.init.insert("u".into(), init_fn(|g| g[0] as f32));
            cfg.collect.push("v".into());
            // A clean runtime rejection is acceptable too.
            if let Ok(outcome) = run(&compiled, &cfg) {
                let (_, v) = &outcome.collected["v"];
                for (i, &val) in v.iter().enumerate() {
                    assert_eq!(val, i as f32);
                }
            }
        }
    }
}
