//! Cross-crate property tests: randomized configurations must preserve the
//! system's core invariants (estimator == measurement, correctness under
//! any legal slab/processor configuration, redistribution round-trips).

use proptest::prelude::*;

use noderun::{init_fn, max_abs_diff, ref_gaxpy, run, RunConfig};
use ooc_bench::gaxpy_hir;
use ooc_core::stripmine::SlabSizing;
use ooc_core::{compile_hir, CompilerOptions, SlabStrategy};

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gaxpy_correct_and_io_predicted_for_random_configs(
        np in 0usize..3,          // n in {8, 16, 24}
        p in 1usize..5,
        sa in 1usize..20,
        sb in 1usize..20,
        strategy_row in proptest::bool::ANY,
    ) {
        let n = [8usize, 16, 24][np];
        let strategy = if strategy_row {
            SlabStrategy::RowSlab
        } else {
            SlabStrategy::ColumnSlab
        };
        let compiled = compile_hir(
            gaxpy_hir(n, p),
            &CompilerOptions {
                sizing: SlabSizing::Explicit { a: sa, b: sb },
                force_strategy: Some(strategy),
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        let mut cfg = RunConfig::default();
        cfg.init.insert("a".into(), init_fn(fa));
        cfg.init.insert("b".into(), init_fn(fb));
        cfg.collect.push("c".into());
        let outcome = run(&compiled, &cfg).unwrap();

        // Correctness.
        let (_, c) = &outcome.collected["c"];
        let expect = ref_gaxpy(n, &fa, &fb);
        prop_assert!(max_abs_diff(c, &expect) < 1e-3);

        // Estimator == measurement on the paper's two I/O metrics, for
        // evenly divisible configurations (the estimator's per-processor
        // view assumes symmetry).
        if n.is_multiple_of(p) {
            let s0 = outcome.report.per_proc()[0].stats;
            prop_assert_eq!(s0.io_requests(), compiled.estimates[0].io_requests());
            prop_assert_eq!(s0.io_bytes(), compiled.estimates[0].io_bytes());
        }
    }

    #[test]
    fn elementwise_random_stencils_match_pointwise_reference(
        p in 1usize..5,
        t in 1usize..9,
        off0 in -1isize..2,
        off1 in -1isize..2,
        scale in 1u32..5,
    ) {
        let n = 16usize;
        let sc = scale as f32 * 0.5;
        let src = format!(
            "
      parameter (n={n})
      real u(n, n), v(n, n)
!hpf$ processors pr({p})
!hpf$ template tm(n)
!hpf$ distribute tm(block) on pr
!hpf$ align (:, *) with tm :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = {sc:.1} * u(i{off0:+}, j{off1:+})
      end forall
      end
"
        );
        // `i+0` is not grammatical Fortran; patch the zero offsets.
        let src = src.replace("i+0", "i").replace("j+0", "j");
        let compiled = compile_hir(
            ooc_core::lower::lower(&hpf::analyze(&hpf::parse_program(&src).unwrap()).unwrap())
                .unwrap(),
            &CompilerOptions {
                elw_slab_elems: t * n * 3,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        let init = |g: &[usize]| ((g[0] * 13 + g[1] * 7) % 17) as f32 * 0.0625;
        let mut cfg = RunConfig::default();
        cfg.init.insert("u".into(), init_fn(init));
        cfg.collect.push("v".into());
        let outcome = run(&compiled, &cfg).unwrap();
        let (shape, v) = &outcome.collected["v"];
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let ui = (i as isize + off0) as usize;
                let uj = (j as isize + off1) as usize;
                let expect = sc * init(&[ui, uj]);
                prop_assert!((v[shape.linear(&[i, j])] - expect).abs() < 1e-5);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The slab cache must be semantically invisible: any interleaving of
    /// section reads and writes, under any byte budget (including 0 and
    /// budgets far smaller than one section), returns the same values as an
    /// uncached environment, and after a flush the backing file holds the
    /// same bytes.
    #[test]
    fn slab_cache_is_transparent_for_any_budget(
        budget in 0usize..2048,
        ops in proptest::collection::vec(
            (proptest::bool::ANY, 0usize..65536, 0usize..65536, 0usize..251),
            1..24,
        ),
    ) {
        use ooc_array::{ArrayDesc, ArrayId, DimRange, Distribution, OocEnv, Section, Shape};
        use pario::{ElemKind, NoCharge};

        let desc = ArrayDesc::new(
            ArrayId(0),
            "x",
            ElemKind::F32,
            Distribution::column_block(Shape::matrix(16, 12), 2),
        );
        let init = |g: &[usize]| (g[0] * 31 + g[1]) as f32 * 0.25;
        let mut cached = OocEnv::in_memory(0);
        let mut plain = OocEnv::in_memory(0);
        for env in [&mut cached, &mut plain] {
            env.alloc(&desc).unwrap();
            env.load_global(&desc, &init).unwrap();
        }
        cached.enable_cache(budget);

        let local = desc.local_shape(0);
        let (l0, l1) = (local.extent(0), local.extent(1));
        for (i, &(is_read, x, y, seed)) in ops.iter().enumerate() {
            let lo0 = x % l0;
            let hi0 = lo0 + 1 + y % (l0 - lo0);
            let lo1 = (x / l0) % l1;
            let hi1 = lo1 + 1 + (y / l0) % (l1 - lo1);
            let sec = Section::new(vec![DimRange::new(lo0, hi0), DimRange::new(lo1, hi1)]);
            if is_read {
                let a = cached.read_section(&desc, &sec, &NoCharge).unwrap();
                let b = plain.read_section(&desc, &sec, &NoCharge).unwrap();
                prop_assert_eq!(a, b, "read {} of section {:?}", i, sec);
            } else {
                let data: Vec<f32> = (0..sec.len())
                    .map(|k| ((seed + i) * 11 + k) as f32 * 0.5 - 7.0)
                    .collect();
                cached.write_section(&desc, &sec, &data, &NoCharge).unwrap();
                plain.write_section(&desc, &sec, &data, &NoCharge).unwrap();
            }
        }

        // After a flush, the cached environment's *backing file* must hold
        // the same bytes: re-reading through a fresh zero-budget cache
        // misses everything, so it observes the backend directly.
        cached.flush_cache(&NoCharge).unwrap();
        cached.enable_cache(0);
        prop_assert_eq!(
            cached.read_local_all(&desc).unwrap(),
            plain.read_local_all(&desc).unwrap()
        );
    }
}

#[test]
fn redistribute_then_back_is_identity() {
    use dmsim::{Machine, MachineConfig};
    use ooc_array::{redistribute, ArrayDesc, ArrayId, Distribution, OocEnv, Shape};
    use pario::{ElemKind, NoCharge};

    let n = 12;
    let p = 3;
    let shape = Shape::matrix(n, n);
    let col = ArrayDesc::new(
        ArrayId(0),
        "x",
        ElemKind::F32,
        Distribution::column_block(shape.clone(), p),
    );
    let row = ArrayDesc::new(
        ArrayId(1),
        "y",
        ElemKind::F32,
        Distribution::row_block(shape.clone(), p),
    );
    let back = ArrayDesc::new(
        ArrayId(2),
        "z",
        ElemKind::F32,
        Distribution::column_block(shape, p),
    );
    let init = |g: &[usize]| (g[0] * 31 + g[1]) as f32;

    let machine = Machine::new(MachineConfig::free(p));
    machine.run(|ctx| {
        let mut env = OocEnv::in_memory(ctx.rank());
        for d in [&col, &row, &back] {
            env.alloc(d).unwrap();
        }
        env.load_global(&col, &init).unwrap();
        redistribute(ctx, &mut env, &col, &row, &NoCharge).unwrap();
        redistribute(ctx, &mut env, &row, &back, &NoCharge).unwrap();
        let orig = env.read_local_all(&col).unwrap();
        let round = env.read_local_all(&back).unwrap();
        assert_eq!(orig, round, "rank {}", ctx.rank());
    });
}

#[test]
fn relayout_preserves_data_under_charged_io() {
    use ooc_array::{
        relayout_in_place, ArrayDesc, ArrayId, Distribution, FileLayout, OocEnv, Shape,
    };
    use pario::{ElemKind, NoCharge};

    let desc = ArrayDesc::new(
        ArrayId(0),
        "x",
        ElemKind::F32,
        Distribution::column_block(Shape::matrix(32, 16), 2),
    );
    let mut env = OocEnv::in_memory(0);
    env.alloc(&desc).unwrap();
    env.load_global(&desc, &|g| (g[0] * 100 + g[1]) as f32)
        .unwrap();
    let before = env.read_local_all(&desc).unwrap();
    let stats_before = env.disk().stats();

    let rm = relayout_in_place(&mut env, &desc, FileLayout::row_major(2), 64, &NoCharge).unwrap();
    let after = env.read_local_all(&rm).unwrap();
    assert_eq!(before, after);
    // The relayout really moved bytes through the I/O layer.
    assert!(env.disk().stats().bytes_read > stats_before.bytes_read);
}
