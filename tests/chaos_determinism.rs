//! Chaos-determinism properties of the fault-injection harness.
//!
//! The contract under test: transient faults perturb *when* things happen,
//! never *what* is computed. A chaos schedule that eventually permits
//! success must yield byte-identical results and identical logical I/O and
//! message counts to the fault-free run; the recovery costs live only in
//! the dedicated fault counters and `time_faults`. And because every fate
//! is drawn from per-(rank, domain) seeded streams, rerunning the same
//! seed replays the entire schedule — stats, retries and simulated times
//! included — bit for bit.

use dmsim::{FaultConfig, RunReport, StatsSnapshot, TraceConfig};
use noderun::{
    divergence_report, init_fn, max_abs_diff, ref_transpose, run, RunConfig, RunOutcome,
};
use ooc_bench::gaxpy_hir;
use ooc_core::{compile_hir, compile_source, CompiledProgram, CompilerOptions};
use proptest::prelude::*;

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

fn gaxpy_compiled(n: usize, p: usize) -> CompiledProgram {
    compile_hir(gaxpy_hir(n, p), &CompilerOptions::default()).unwrap()
}

fn gaxpy_outcome(
    compiled: &CompiledProgram,
    fault: Option<FaultConfig>,
    checkpoint_dir: Option<std::path::PathBuf>,
) -> RunOutcome {
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.init.insert("b".into(), init_fn(fb));
    cfg.collect.push("c".into());
    cfg.fault = fault;
    cfg.checkpoint_dir = checkpoint_dir;
    run(compiled, &cfg).unwrap()
}

/// The logical (fault-independent) half of a stats snapshot.
fn logical_counts(s: &StatsSnapshot) -> [u64; 12] {
    [
        s.flops,
        s.msgs_sent,
        s.bytes_sent,
        s.msgs_received,
        s.bytes_received,
        s.io_read_requests,
        s.io_bytes_read,
        s.io_write_requests,
        s.io_bytes_written,
        s.cache_hits,
        s.write_back_requests,
        s.write_back_bytes,
    ]
}

#[track_caller]
fn assert_logical_counts_equal(chaos: &RunReport, clean: &RunReport) {
    for (c, b) in chaos.per_proc().iter().zip(clean.per_proc()) {
        assert_eq!(
            logical_counts(&c.stats),
            logical_counts(&b.stats),
            "rank {}: chaos must not change logical request/byte/message counts",
            c.rank
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any transient-only chaos schedule leaves the computed array
    /// byte-identical to the fault-free run with identical logical counts,
    /// and the same seed replays the whole run — stats and simulated
    /// times included — exactly.
    #[test]
    fn chaos_schedules_preserve_results_and_replay_exactly(seed in 0u64..1 << 20) {
        let compiled = gaxpy_compiled(16, 4);
        let clean = gaxpy_outcome(&compiled, None, None);
        let chaos = gaxpy_outcome(&compiled, Some(FaultConfig::chaos(seed)), None);

        // Faults never change what is computed.
        prop_assert_eq!(&chaos.collected["c"], &clean.collected["c"]);
        assert_logical_counts_equal(&chaos.report, &clean.report);

        // The chaos preset actually exercises the harness, and its costs
        // land in the fault counters, charged into the simulated clock.
        let t = chaos.report.totals();
        prop_assert!(t.faults_injected > 0, "seed {} drew no faults", seed);
        prop_assert!(t.time_faults > 0.0);
        prop_assert!(chaos.report.elapsed() > clean.report.elapsed());

        // Same seed => identical replay, down to retry counts and clocks.
        let again = gaxpy_outcome(&compiled, Some(FaultConfig::chaos(seed)), None);
        prop_assert_eq!(&again.collected["c"], &chaos.collected["c"]);
        prop_assert_eq!(again.report.elapsed(), chaos.report.elapsed());
        for (x, y) in again.report.per_proc().iter().zip(chaos.report.per_proc()) {
            prop_assert_eq!(x.stats, y.stats, "rank {} replay diverged", x.rank);
        }
    }
}

fn transpose_compiled(n: usize, method: pario::IoMethod) -> CompiledProgram {
    let src = format!(
        "
      parameter (n={n})
      real a(n, n), b(n, n)
!hpf$ processors pr(4)
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
"
    );
    let options = CompilerOptions {
        io_method: Some(method),
        trace: TraceConfig::on(),
        ..CompilerOptions::default()
    };
    compile_source(&src, &options).unwrap()
}

fn transpose_outcome(compiled: &CompiledProgram, fault: Option<FaultConfig>) -> RunOutcome {
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.collect.push("b".into());
    cfg.fault = fault;
    run(compiled, &cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The two-phase collective access method is transparent: it produces
    /// byte-identical array contents to the direct method, with and without
    /// chaos-grade fault injection, and its cost model stays exact — the
    /// divergence report reconciles estimated against measured request
    /// counts with zero gap even on a chaos run.
    #[test]
    fn two_phase_matches_direct_under_chaos_and_reconciles(seed in 0u64..1 << 20) {
        let n = 16;
        let direct = transpose_compiled(n, pario::IoMethod::Direct);
        let two = transpose_compiled(n, pario::IoMethod::TwoPhase);

        let d_clean = transpose_outcome(&direct, None);
        let t_clean = transpose_outcome(&two, None);
        let d_chaos = transpose_outcome(&direct, Some(FaultConfig::chaos(seed)));
        let mut t_chaos = transpose_outcome(&two, Some(FaultConfig::chaos(seed)));

        // Byte-identical contents across methods, clean and under chaos.
        prop_assert_eq!(&t_clean.collected["b"], &d_clean.collected["b"]);
        prop_assert_eq!(&d_chaos.collected["b"], &d_clean.collected["b"]);
        prop_assert_eq!(&t_chaos.collected["b"], &d_clean.collected["b"]);

        // Chaos never changes the two-phase logical request/message counts.
        assert_logical_counts_equal(&t_chaos.report, &t_clean.report);

        // Estimate == measured for the two-phase cost path, even on the
        // chaos schedule: the report has rows and every gap is zero.
        let trace = t_chaos.report.take_trace().expect("compiled with tracing");
        let report = divergence_report(&two, &trace);
        prop_assert!(!report.rows.is_empty());
        prop_assert!(
            report.is_zero_gap(),
            "two-phase estimates must reconcile exactly:\n{}",
            report.render()
        );
    }
}

/// With injection disabled — whether by omitting the config or by arming a
/// quiet (all-rates-zero) one — the run is bit-identical to the pre-fault
/// substrate: same results, same stats, same simulated time.
#[test]
fn disabled_injection_is_bit_transparent() {
    let compiled = gaxpy_compiled(24, 4);
    let off = gaxpy_outcome(&compiled, None, None);
    let quiet = gaxpy_outcome(&compiled, Some(FaultConfig::quiet(99)), None);

    assert_eq!(quiet.collected["c"], off.collected["c"]);
    assert_eq!(quiet.report.elapsed(), off.report.elapsed());
    for (q, o) in quiet.report.per_proc().iter().zip(off.report.per_proc()) {
        assert_eq!(q.stats, o.stats, "rank {}", q.rank);
    }
    assert_eq!(quiet.report.totals().faults_injected, 0);
}

/// Permanent faults abort the machine run; with a checkpoint directory the
/// executor restarts, agrees on the saved watermark, and still produces the
/// fault-free answer. The checkpoints themselves are cleaned up on success.
#[test]
fn hard_faults_recover_through_checkpoints() {
    let compiled = gaxpy_compiled(16, 4);
    let clean = gaxpy_outcome(&compiled, None, None);

    let dir = std::env::temp_dir().join(format!("ooc-chaos-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Guaranteed first-attempt failure: every read draw is a permanent
    // fault. Recovery quiesces the hard rates and re-runs under the
    // remaining transient chaos.
    let cfg = FaultConfig {
        hard_read: 1.0,
        ..FaultConfig::chaos(3)
    };
    let recovered = gaxpy_outcome(&compiled, Some(cfg), Some(dir.clone()));
    assert_eq!(recovered.collected["c"], clean.collected["c"]);

    // Moderate hard rates: some progress lands in checkpoints before the
    // abort, and the restart resumes from the agreed watermark.
    let cfg = FaultConfig {
        hard_read: 0.01,
        hard_write: 0.01,
        ..FaultConfig::chaos(17)
    };
    let recovered = gaxpy_outcome(&compiled, Some(cfg), Some(dir.clone()));
    assert_eq!(recovered.collected["c"], clean.collected["c"]);

    let leftover: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        .collect();
    assert!(
        leftover.is_empty(),
        "successful runs must remove their checkpoints: {leftover:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A disk marked degraded mid-run triggers a cost-model re-plan of the slab
/// sizes; the replanned run still computes the fault-free answer (its I/O
/// schedule legitimately differs, so only results are compared).
#[test]
fn degraded_disk_replans_and_stays_correct() {
    let compiled = gaxpy_compiled(24, 4);
    let clean = gaxpy_outcome(&compiled, None, None);

    let cfg = FaultConfig {
        read_error: 0.25,
        degrade_after: 2,
        ..FaultConfig::quiet(5)
    };
    let degraded = gaxpy_outcome(&compiled, Some(cfg), None);
    assert_eq!(degraded.collected["c"], clean.collected["c"]);
    assert!(degraded.report.totals().faults_injected >= 2);
    assert!(degraded.report.elapsed() > clean.report.elapsed());
}

/// Chaos transparency holds for the stencil executor (ghost-cell p2p
/// exchanges under message drops/delays) end to end from HPF source.
#[test]
fn jacobi_under_chaos_matches_fault_free_run() {
    let n = 24;
    let src = format!(
        "
      parameter (n={n})
      real u(n, n), v(n, n)
!hpf$ processors pr(4)
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      forall (i = 2:n-1, j = 2:n-1)
        u(i, j) = 0.25 * (v(i-1, j) + v(i+1, j) + v(i, j-1) + v(i, j+1))
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(fa));
    cfg.init.insert("v".into(), init_fn(fa));
    cfg.collect.push("u".into());
    let clean = run(&compiled, &cfg).unwrap();
    cfg.fault = Some(FaultConfig::chaos(41));
    let chaos = run(&compiled, &cfg).unwrap();

    assert_eq!(chaos.collected["u"], clean.collected["u"]);
    assert_logical_counts_equal(&chaos.report, &clean.report);
    assert!(chaos.report.totals().faults_injected > 0);
}

/// Chaos transparency holds for the all-to-all remap executor, whose
/// p2p traffic is the densest in the suite.
#[test]
fn transpose_under_chaos_matches_reference() {
    let n = 32;
    let src = format!(
        "
      parameter (n={n})
      real a(n, n), b(n, n)
!hpf$ processors pr(4)
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    let init = |g: &[usize]| (g[0] * 1000 + g[1]) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(init));
    cfg.collect.push("b".into());
    cfg.fault = Some(FaultConfig::chaos(12));
    let outcome = run(&compiled, &cfg).unwrap();

    let (_, b) = &outcome.collected["b"];
    assert_eq!(max_abs_diff(b, &ref_transpose(n, &init)), 0.0);
    assert!(outcome.report.totals().faults_injected > 0);
}
