//! Shape tests for the paper's evaluation claims, at reduced scale.
//!
//! These encode the qualitative structure of Table 1, Table 2 and Figure 10
//! — who wins, in which direction the trends run — so regressions in the
//! cost model, the planner or the executor that would silently change the
//! reproduced results fail CI.

use ooc_bench::{run_incore_matmul, run_matmul, MatmulSetup};
use ooc_core::stripmine::SlabSizing;
use ooc_core::SlabStrategy;

const N: usize = 128;

fn t(setup: &MatmulSetup) -> f64 {
    run_matmul(setup).sim_seconds
}

#[test]
fn table1_row_slabs_win_big_everywhere() {
    for p in [4usize, 8] {
        for ratio in [0.125, 0.5, 1.0] {
            let col = t(&MatmulSetup::table1(N, p, ratio, SlabStrategy::ColumnSlab));
            let row = t(&MatmulSetup::table1(N, p, ratio, SlabStrategy::RowSlab));
            assert!(
                col > 3.0 * row,
                "p={p} ratio={ratio}: col {col:.2} not >> row {row:.2}"
            );
        }
    }
}

#[test]
fn table1_io_reduction_is_an_order_of_magnitude() {
    // The headline claim is about the I/O metrics, not just time.
    let col = run_matmul(&MatmulSetup::table1(N, 4, 0.25, SlabStrategy::ColumnSlab));
    let row = run_matmul(&MatmulSetup::table1(N, 4, 0.25, SlabStrategy::RowSlab));
    assert!(
        col.io_bytes as f64 > 10.0 * row.io_bytes as f64,
        "bytes: col {} row {}",
        col.io_bytes,
        row.io_bytes
    );
    assert!(
        col.io_requests as f64 > 10.0 * row.io_requests as f64,
        "requests: col {} row {}",
        col.io_requests,
        row.io_requests
    );
}

#[test]
fn fig10_time_grows_as_slab_ratio_shrinks() {
    for p in [4usize, 8] {
        let times: Vec<f64> = [1.0, 0.5, 0.25, 0.125]
            .iter()
            .map(|&r| t(&MatmulSetup::table1(N, p, r, SlabStrategy::ColumnSlab)))
            .collect();
        for w in times.windows(2) {
            assert!(
                w[1] > w[0],
                "p={p}: smaller slabs must cost more: {times:?}"
            );
        }
    }
}

#[test]
fn table1_time_falls_with_more_processors() {
    for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
        let t4 = t(&MatmulSetup::table1(N, 4, 0.25, strategy));
        let t16 = t(&MatmulSetup::table1(N, 16, 0.25, strategy));
        assert!(t16 < t4, "{strategy:?}: t16 {t16:.2} !< t4 {t4:.2}");
    }
}

#[test]
fn table1_incore_is_the_floor() {
    let incore = run_incore_matmul(N, 4).sim_seconds;
    for ratio in [0.125, 0.5] {
        for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
            let ooc = t(&MatmulSetup::table1(N, 4, ratio, strategy));
            assert!(
                incore < ooc,
                "in-core {incore:.2} !< {strategy:?}@{ratio} {ooc:.2}"
            );
        }
    }
}

#[test]
fn table2_give_the_frequent_array_the_memory() {
    // Row version on p procs: A streams once but every slab of A re-streams
    // all of B, so B is the frequently-accessed array under row slabs; with
    // total memory fixed, growing the A slab (fewer B restreams) must beat
    // growing the B slab once the budget is large.
    let p = 8;
    let fixed = 8usize;
    let big = 64usize;
    let vary_a = t(&MatmulSetup {
        n: N,
        p,
        strategy: Some(SlabStrategy::RowSlab),
        sizing: SlabSizing::Explicit { a: big, b: fixed },
        reorganize: true,
        verify: false,
        cache_budget: None,
    });
    let vary_b = t(&MatmulSetup {
        n: N,
        p,
        strategy: Some(SlabStrategy::RowSlab),
        sizing: SlabSizing::Explicit { a: fixed, b: big },
        reorganize: true,
        verify: false,
        cache_budget: None,
    });
    assert!(
        vary_a < vary_b,
        "same total memory: larger A slab ({vary_a:.2}) must beat larger B slab ({vary_b:.2})"
    );
}

#[test]
fn table2_more_memory_never_hurts() {
    let p = 8;
    let mut last = f64::INFINITY;
    for s in [8usize, 16, 32, 64] {
        let time = t(&MatmulSetup {
            n: N,
            p,
            strategy: Some(SlabStrategy::RowSlab),
            sizing: SlabSizing::Explicit { a: s, b: s },
            reorganize: true,
            verify: false,
            cache_budget: None,
        });
        assert!(
            time <= last + 1e-9,
            "slab {s}: {time:.2} > previous {last:.2}"
        );
        last = time;
    }
}

#[test]
fn selection_always_matches_the_cheaper_forced_run() {
    // The compiler's pick must agree with brute-force measurement.
    for ratio in [0.125, 1.0] {
        let auto = run_matmul(&MatmulSetup {
            n: N,
            p: 4,
            strategy: None,
            sizing: SlabSizing::Ratio(ratio),
            reorganize: true,
            verify: false,
            cache_budget: None,
        });
        let col = t(&MatmulSetup::table1(N, 4, ratio, SlabStrategy::ColumnSlab));
        let row = t(&MatmulSetup::table1(N, 4, ratio, SlabStrategy::RowSlab));
        let best = col.min(row);
        assert!(
            (auto.sim_seconds - best).abs() / best < 1e-6,
            "auto {} vs best {}",
            auto.sim_seconds,
            best
        );
    }
}

#[test]
fn estimator_matches_measured_io_exactly_on_experiment_cells() {
    use ooc_core::{compile_hir, CompilerOptions, ExecPlan};
    for (p, ratio, strategy) in [
        (4usize, 0.125, SlabStrategy::ColumnSlab),
        (4, 1.0, SlabStrategy::ColumnSlab),
        (8, 0.25, SlabStrategy::RowSlab),
        (8, 1.0, SlabStrategy::RowSlab),
    ] {
        let compiled = compile_hir(
            ooc_bench::gaxpy_hir(N, p),
            &CompilerOptions {
                sizing: SlabSizing::Ratio(ratio),
                force_strategy: Some(strategy),
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        let ExecPlan::Gaxpy(_) = &compiled.plans[0] else {
            panic!()
        };
        let est = &compiled.estimates[0];
        let mut cfg = noderun::RunConfig::default();
        cfg.init
            .insert("a".into(), noderun::init_fn(ooc_bench::harness::init_a));
        cfg.init
            .insert("b".into(), noderun::init_fn(ooc_bench::harness::init_b));
        let outcome = noderun::run(&compiled, &cfg).unwrap();
        let s0 = outcome.report.per_proc()[0].stats;
        assert_eq!(
            s0.io_requests(),
            est.io_requests(),
            "p={p} ratio={ratio} {strategy:?}"
        );
        assert_eq!(
            s0.io_bytes(),
            est.io_bytes(),
            "p={p} ratio={ratio} {strategy:?}"
        );
    }
}
