//! End-to-end integration: HPF source text → compiler → simulated machine →
//! verified results, across all three plan kinds and both storage backends.

use noderun::{init_fn, max_abs_diff, ref_gaxpy, ref_jacobi, ref_transpose, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions, ExecPlan, SlabStrategy};

fn gaxpy_source(n: usize, p: usize) -> String {
    format!(
        "
      parameter (n={n}, nprocs={p})
      real a(n,n), b(n,n), c(n,n), temp(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, c, temp
!hpf$ align (:,*) with d :: b
      do j = 1, n
        forall (k = 1:n)
          temp(1:n, k) = b(k, j) * a(1:n, k)
        end forall
        c(1:n, j) = sum(temp, 2)
      end do
      end
"
    )
}

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 11) as f32 * 0.125 - 0.5
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 13) as f32 * 0.125 - 0.75
}

#[test]
fn hpf_source_to_verified_product() {
    let n = 32;
    for p in [1, 2, 4] {
        let compiled = compile_source(&gaxpy_source(n, p), &CompilerOptions::default()).unwrap();
        let mut cfg = RunConfig::default();
        cfg.init.insert("a".into(), init_fn(fa));
        cfg.init.insert("b".into(), init_fn(fb));
        cfg.collect.push("c".into());
        let outcome = run(&compiled, &cfg).unwrap();
        let (_, c) = &outcome.collected["c"];
        let expect = ref_gaxpy(n, &fa, &fb);
        assert!(max_abs_diff(c, &expect) < 1e-3, "wrong product for p={p}");
        assert!(outcome.report.elapsed() > 0.0);
    }
}

#[test]
fn on_disk_backend_produces_identical_results() {
    let n = 16;
    let compiled = compile_source(&gaxpy_source(n, 2), &CompilerOptions::default()).unwrap();
    let mut results = Vec::new();
    for backend in [noderun::Backend::Memory, noderun::Backend::Disk] {
        let mut cfg = RunConfig {
            backend,
            ..RunConfig::default()
        };
        cfg.init.insert("a".into(), init_fn(fa));
        cfg.init.insert("b".into(), init_fn(fb));
        cfg.collect.push("c".into());
        let outcome = run(&compiled, &cfg).unwrap();
        results.push(outcome.collected["c"].1.clone());
    }
    assert_eq!(results[0], results[1], "backends must agree bit-for-bit");
}

#[test]
fn both_forced_strategies_agree_on_the_answer() {
    let n = 24;
    let mut answers = Vec::new();
    for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
        let opts = CompilerOptions {
            force_strategy: Some(strategy),
            ..CompilerOptions::default()
        };
        let compiled = compile_source(&gaxpy_source(n, 4), &opts).unwrap();
        let mut cfg = RunConfig::default();
        cfg.init.insert("a".into(), init_fn(fa));
        cfg.init.insert("b".into(), init_fn(fb));
        cfg.collect.push("c".into());
        let outcome = run(&compiled, &cfg).unwrap();
        answers.push(outcome.collected["c"].1.clone());
    }
    assert!(max_abs_diff(&answers[0], &answers[1]) < 1e-4);
}

#[test]
fn jacobi_program_end_to_end() {
    let n = 24;
    let src = format!(
        "
      parameter (n={n})
      real u(n, n), v(n, n)
!hpf$ processors pr(4)
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      forall (i = 2:n-1, j = 2:n-1)
        v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    assert!(matches!(compiled.plans[0], ExecPlan::Elementwise(_)));
    let init = |g: &[usize]| ((g[0] * 13 + g[1] * 7) % 17) as f32 * 0.0625;
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(init));
    cfg.init.insert("v".into(), init_fn(init)); // boundary keeps init values
    cfg.collect.push("v".into());
    let outcome = run(&compiled, &cfg).unwrap();
    let (_, v) = &outcome.collected["v"];
    let expect = ref_jacobi(n, &init);
    assert!(max_abs_diff(v, &expect) < 1e-5);
    // Ghost exchange happened: messages were sent.
    assert!(outcome.report.totals().msgs_sent > 0);
}

#[test]
fn transpose_program_end_to_end() {
    let n = 20;
    let src = format!(
        "
      parameter (n={n})
      real a(n, n), b(n, n)
!hpf$ processors pr(4)
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    assert!(matches!(compiled.plans[0], ExecPlan::Transpose(_)));
    let init = |g: &[usize]| (g[0] * 100 + g[1]) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(init));
    cfg.collect.push("b".into());
    let outcome = run(&compiled, &cfg).unwrap();
    let (_, b) = &outcome.collected["b"];
    assert_eq!(b, &ref_transpose(n, &init));
}

#[test]
fn multi_statement_program_runs_in_order() {
    // Scale then transpose: b = 2u, c = b^T.
    let n = 12;
    let src = format!(
        "
      parameter (n={n})
      real u(n, n), b(n, n), c(n, n)
!hpf$ processors pr(2)
!hpf$ distribute u(*, block) on pr
!hpf$ distribute b(*, block) on pr
!hpf$ distribute c(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = 2.0 * u(i, j)
      end forall
      forall (i = 1:n, j = 1:n)
        c(i, j) = b(j, i)
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).unwrap();
    assert_eq!(compiled.plans.len(), 2);
    let init = |g: &[usize]| (g[0] * 10 + g[1]) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(init));
    cfg.collect.push("c".into());
    let outcome = run(&compiled, &cfg).unwrap();
    let (shape, c) = &outcome.collected["c"];
    for j in 0..n {
        for i in 0..n {
            assert_eq!(c[shape.linear(&[i, j])], 2.0 * init(&[j, i]));
        }
    }
}

#[test]
fn prefetch_and_sieving_preserve_results() {
    let n = 24;
    let compiled = compile_source(&gaxpy_source(n, 4), &CompilerOptions::default()).unwrap();
    let expect = ref_gaxpy(n, &fa, &fb);
    let mut base_time = None;
    for (prefetch, sieve) in [
        (false, None),
        (true, None),
        (false, Some(pario::SievePolicy::Always)),
        (
            true,
            Some(pario::SievePolicy::WasteBound { max_waste: 4.0 }),
        ),
    ] {
        let mut cfg = RunConfig {
            prefetch,
            sieve,
            ..RunConfig::default()
        };
        cfg.init.insert("a".into(), init_fn(fa));
        cfg.init.insert("b".into(), init_fn(fb));
        cfg.collect.push("c".into());
        let outcome = run(&compiled, &cfg).unwrap();
        let (_, c) = &outcome.collected["c"];
        assert!(
            max_abs_diff(c, &expect) < 1e-3,
            "prefetch={prefetch} sieve={sieve:?}"
        );
        match base_time {
            None => base_time = Some(outcome.report.elapsed()),
            Some(base) => {
                if prefetch && sieve.is_none() {
                    assert!(
                        outcome.report.elapsed() <= base,
                        "prefetch slower than base"
                    );
                }
            }
        }
    }
}

#[test]
fn sieving_rescues_the_unreorganized_row_version() {
    // Ablation: row slabs without storage reorganization are strided; a
    // cost-based sieve turns each strided slab into one spanning request.
    let n = 32;
    let opts = CompilerOptions {
        force_strategy: Some(SlabStrategy::RowSlab),
        reorganize_storage: false,
        sizing: ooc_core::stripmine::SlabSizing::Ratio(0.25),
        ..CompilerOptions::default()
    };
    let compiled = compile_source(&gaxpy_source(n, 4), &opts).unwrap();
    let run_with = |sieve: Option<pario::SievePolicy>| {
        let mut cfg = RunConfig {
            sieve,
            ..RunConfig::default()
        };
        cfg.init.insert("a".into(), init_fn(fa));
        cfg.init.insert("b".into(), init_fn(fb));
        cfg.collect.push("c".into());
        run(&compiled, &cfg).unwrap()
    };
    let direct = run_with(None);
    let model = &compiled.model;
    let sieved = run_with(Some(pario::SievePolicy::CostBased {
        startup: model.io_startup,
        bandwidth: model.io_bandwidth_per_proc(),
    }));
    assert!(
        sieved.report.io_requests_per_proc() < direct.report.io_requests_per_proc() / 2,
        "sieve {} !<< direct {}",
        sieved.report.io_requests_per_proc(),
        direct.report.io_requests_per_proc()
    );
    assert!(sieved.report.elapsed() < direct.report.elapsed());
    // And the answers agree.
    assert_eq!(direct.collected["c"].1, sieved.collected["c"].1);
}

#[test]
fn compilation_report_documents_the_choice() {
    let compiled = compile_source(&gaxpy_source(64, 4), &CompilerOptions::default()).unwrap();
    let report = compiled.report();
    assert!(report.contains("row slab"), "{report}");
    assert!(report.contains("column slab"), "{report}");
    assert!(report.contains("requests"), "{report}");
    let text = compiled.node_program_text(0);
    assert!(text.contains("global_sum"), "{text}");
}

#[test]
fn peak_memory_reported_and_bounded() {
    let opts = CompilerOptions {
        sizing: ooc_core::stripmine::SlabSizing::Ratio(0.25),
        ..CompilerOptions::default()
    };
    let compiled = compile_source(&gaxpy_source(32, 4), &opts).unwrap();
    let ExecPlan::Gaxpy(g) = &compiled.plans[0] else {
        panic!()
    };
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.init.insert("b".into(), init_fn(fb));
    let outcome = run(&compiled, &cfg).unwrap();
    assert!(outcome.peak_elems > 0);
    assert!(
        outcome.peak_elems <= g.memory_elems(),
        "peak {} exceeds plan budget {}",
        outcome.peak_elems,
        g.memory_elems()
    );
}
