//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only as `#[derive(Serialize, Deserialize)]`
//! annotations on plain-old-data types; nothing actually serializes. This
//! shim keeps those annotations compiling in a build environment with no
//! crates.io access: the traits are markers and the derives expand to
//! nothing. If a future change needs real serialization, replace the
//! `shims/serde` path dependency in the workspace manifest with the real
//! crates.io `serde`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
