//! Offline stand-in for `rand`, covering the seeded-test surface this
//! workspace uses: `StdRng::seed_from_u64`, `gen_range` over integer ranges,
//! `gen::<u8>()` and `gen_bool`. The generator is splitmix64 — statistically
//! fine for randomized tests, deterministic for a given seed, and not
//! bit-compatible with the real crate (no test here depends on the exact
//! stream, only on determinism).

/// Types that can be drawn uniformly from a `lo..hi` range.
pub trait SampleUniform: Copy {
    /// Map a raw 64-bit draw into `lo..hi` (half-open, `hi > lo`).
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                assert!(hi > lo, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (draw as u128 % span) as i128) as $t
            }
        }
    )+};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable from the full-width "standard" distribution.
pub trait Standard {
    /// Build a value from a raw 64-bit draw.
    fn from_draw(draw: u64) -> Self;
}

impl Standard for u8 {
    fn from_draw(draw: u64) -> Self {
        draw as u8
    }
}

impl Standard for u32 {
    fn from_draw(draw: u64) -> Self {
        draw as u32
    }
}

impl Standard for u64 {
    fn from_draw(draw: u64) -> Self {
        draw
    }
}

impl Standard for bool {
    fn from_draw(draw: u64) -> Self {
        draw & 1 == 1
    }
}

/// Subset of `rand::Rng` used by the workspace's tests.
pub trait Rng {
    /// Next raw 64-bit draw from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from the half-open range `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::from_draw(self.next_u64(), range.start, range.end)
    }

    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_draw(self.next_u64())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53-bit mantissa draw in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Subset of `rand::SeedableRng` used by the workspace's tests.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-4i64..3);
            assert!((-4..3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
