//! Test configuration and the deterministic RNG behind the shim.

/// Subset of `proptest::test_runner::ProptestConfig`: only `cases` matters.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 stream, seeded from the test name and case
/// index so every test and case gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
