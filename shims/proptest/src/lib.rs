//! Offline stand-in for `proptest`.
//!
//! Implements exactly the surface this workspace's property tests use:
//! the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!` macros,
//! integer-range / tuple / `Just` / char-class string strategies,
//! `prop_map`, `prop_recursive`, `collection::vec` and `bool::ANY`.
//!
//! Semantics differ from the real crate in two deliberate ways: sampling is
//! a fixed deterministic stream per (test name, case index) — there is no
//! persisted failure file — and failing cases are reported by panic without
//! shrinking. Neither matters for the tests here, which only need uniform
//! coverage of small configuration spaces.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec` only).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with length drawn from `len` and elements from
    /// `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// `proptest::collection::vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            lo: len.start,
            hi: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.hi - self.lo).max(1) as u64;
            let n = self.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    /// `proptest::bool::ANY`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        __case as u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __run = move || $body;
                    #[allow(clippy::let_unit_value)]
                    let _ = __run();
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its sampled inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($arm:expr),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
