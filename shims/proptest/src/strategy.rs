//! The `Strategy` trait and the combinators the workspace's tests use.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of random values (sampling only — this shim never shrinks).
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.sample(rng)))
    }

    /// Build recursive values: `self` is the leaf case and `recurse` maps a
    /// strategy for depth-`k` values to one for depth-`k+1` values. The
    /// `_desired_size` / `_expected_branch` tuning knobs of the real crate
    /// are accepted and ignored; each level falls back to a leaf with
    /// probability 1/4 so generated trees stay small.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            let fallback = leaf.clone();
            cur = BoxedStrategy(Arc::new(move |rng| {
                if rng.next_u64() % 4 == 0 {
                    fallback.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            }));
        }
        cur
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Char-class string strategy: the tests use patterns of the form
/// `"[a-e]"`, interpreted as one random char drawn from the class.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let class = self
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let mut choices: Vec<char> = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    choices.push(c);
                }
                i += 3;
            } else {
                choices.push(chars[i]);
                i += 1;
            }
        }
        assert!(!choices.is_empty(), "empty char class {self:?}");
        let pick = (rng.next_u64() % choices.len() as u64) as usize;
        choices[pick].to_string()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = (3usize..8).sample(&mut rng);
            assert!((3..8).contains(&v));
            seen[v - 3] = true;
            let w = (-1isize..2).sample(&mut rng);
            assert!((-1..2).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all values of 3..8 seen");
    }

    #[test]
    fn char_class_parses_ranges() {
        let mut rng = TestRng::for_case("chars", 0);
        for _ in 0..100 {
            let s = "[a-e]".sample(&mut rng);
            assert_eq!(s.len(), 1);
            let c = s.chars().next().unwrap();
            assert!(('a'..='e').contains(&c), "{c}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::for_case("tree", 0);
        for _ in 0..100 {
            // Depth ≤ leaf level (1) + `depth` recursive levels.
            assert!(depth(&strat.sample(&mut rng)) <= 5);
        }
    }
}
