//! No-op derive macros backing the offline `serde` shim: the workspace only
//! annotates types with the derives, so expanding to nothing is sufficient.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
