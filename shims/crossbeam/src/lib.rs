//! Offline stand-in for `crossbeam`, covering the `channel::unbounded` API
//! the simulator's message fabric uses.
//!
//! Unlike `std::sync::mpsc`, both endpoints are `Clone` (the fabric builds
//! `vec![None; n]` of either), receives are blocking with disconnect
//! detection, and sends fail once every receiver is gone — the crossbeam
//! semantics `dmsim::comm` relies on, implemented over `Mutex` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).expect("channel poisoned");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.inner.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_then_recv() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn recv_after_sender_drop_drains_then_errors() {
            let (tx, rx) = unbounded();
            tx.send(1u32).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9u32), Err(SendError(9)));
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(7u32).unwrap();
            assert_eq!(t.join().unwrap(), Ok(7));
        }
    }
}
