//! Offline stand-in for `criterion`.
//!
//! Provides the group/bench/iter API surface the workspace's benches use,
//! with a simple measurement loop: each benchmark is timed over a handful
//! of samples and the per-iteration mean and min are printed. No warmup
//! modeling, outlier analysis or HTML reports — just enough to run
//! `cargo bench` offline and eyeball regressions.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark driver; handed to the functions listed in `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&self.name, &id.0, self.sample_size, |b| f(b));
        self
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(&self.name, &id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count so one sample takes roughly
    // 5 ms, capped to keep total bench time bounded.
    let mut probe = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut probe);
    let per_iter = probe.elapsed_ns.max(1);
    let iters = ((5_000_000 / per_iter).clamp(1, 10_000)) as u64;

    let mut total_ns: u128 = 0;
    let mut min_ns: u128 = u128::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per = b.elapsed_ns / iters as u128;
        total_ns += per;
        min_ns = min_ns.min(per);
    }
    let mean = total_ns / samples as u128;
    println!(
        "bench {group}/{id}: mean {} min {} ({samples} samples x {iters} iters)",
        fmt_ns(mean),
        fmt_ns(min_ns)
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collect benchmark functions into a runner named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
