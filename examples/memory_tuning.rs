//! Memory allocation among competing out-of-core arrays (§4.2.1, Table 2),
//! explored interactively: sweep explicit slab sizes, then compare the
//! compiler's automatic allocation policies on the same budgets.
//!
//! ```text
//! cargo run --release -p ooc-bench --example memory_tuning
//! ```

use ooc_bench::table::secs;
use ooc_bench::{run_matmul, MatmulSetup, TextTable};
use ooc_core::stripmine::SlabSizing;
use ooc_core::{MemoryPolicy, SlabStrategy};

fn main() {
    let n = 256;
    let p = 8;
    let lc = n / p;

    println!("row-slab {n}x{n} matmul on {p} processors\n");

    // 1. Sweep the A/B split at a fixed total budget (Table 2's shape).
    println!("fixed total budget, varying the split:");
    let total_cols = 64usize; // budget in column-equivalents
    let mut t = TextTable::new(&["slab A", "slab B", "time (s)", "requests/proc"]);
    for a_share in [8usize, 16, 32, 48, 56] {
        let b_share = total_cols - a_share;
        let row = run_matmul(&MatmulSetup {
            n,
            p,
            strategy: Some(SlabStrategy::RowSlab),
            sizing: SlabSizing::Explicit {
                a: a_share,
                b: b_share,
            },
            reorganize: true,
            verify: false,
            cache_budget: None,
        });
        t.row(vec![
            a_share.to_string(),
            b_share.to_string(),
            secs(row.sim_seconds),
            row.io_requests.to_string(),
        ]);
    }
    print!("{}", t.render());

    // 2. Automatic policies at several budgets.
    println!("\nautomatic policies:");
    let mut t = TextTable::new(&["budget (elems)", "equal (s)", "weighted (s)", "search (s)"]);
    for budget_cols in [8usize, 32, 128] {
        let elems = budget_cols * lc * 2;
        let mut cells = vec![elems.to_string()];
        for policy in [
            MemoryPolicy::EqualSplit,
            MemoryPolicy::AccessWeighted,
            MemoryPolicy::Search,
        ] {
            let row = run_matmul(&MatmulSetup {
                n,
                p,
                strategy: Some(SlabStrategy::RowSlab),
                sizing: SlabSizing::Budget { elems, policy },
                reorganize: true,
                verify: false,
                cache_budget: None,
            });
            cells.push(secs(row.sim_seconds));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "\nthe paper's conclusion: give the more frequently accessed array the larger slab \
         — equal splits leave time on the table"
    );
}
