//! The paper's running example in full: both translations of the
//! out-of-core GAXPY program, side by side.
//!
//! Prints the column-slab node program (Figure 9), the row-slab node
//! program (Figure 12), the compiler's cost estimates for each, and the
//! measured execution of both — demonstrating the order-of-magnitude I/O
//! reduction of §4.
//!
//! ```text
//! cargo run --release -p ooc-bench --example gaxpy_hpf
//! ```

use noderun::{init_fn, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions, SlabStrategy};

fn main() {
    let n = 256;
    let p = 4;
    let source = format!(
        "
      parameter (n={n}, nprocs={p})
      real a(n,n), b(n,n), c(n,n), temp(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, c, temp
!hpf$ align (:,*) with d :: b
      do j = 1, n
        forall (k = 1:n)
          temp(1:n, k) = b(k, j) * a(1:n, k)
        end forall
        c(1:n, j) = sum(temp, 2)
      end do
      end
"
    );
    println!("source program (paper, Figure 3):\n{source}");

    for strategy in [SlabStrategy::ColumnSlab, SlabStrategy::RowSlab] {
        let opts = CompilerOptions {
            sizing: ooc_core::stripmine::SlabSizing::Ratio(0.25),
            force_strategy: Some(strategy),
            ..CompilerOptions::default()
        };
        let compiled = compile_source(&source, &opts).expect("compiles");
        println!(
            "==== {} version (paper Figure {}) ====",
            strategy.name(),
            match strategy {
                SlabStrategy::ColumnSlab => 9,
                SlabStrategy::RowSlab => 12,
            }
        );
        println!("{}", compiled.node_program_text(0));
        let est = &compiled.estimates[0];
        println!(
            "estimated: {} I/O requests, {} bytes, {:.2} s (I/O {:.2} + comm {:.2} + compute {:.2})",
            est.io_requests(),
            est.io_bytes(),
            est.time(),
            est.io_time,
            est.comm_time,
            est.compute_time
        );

        let mut cfg = RunConfig::default();
        cfg.init.insert(
            "a".into(),
            init_fn(|g| ((g[0] * 7 + g[1] * 3) % 8) as f32 * 0.25 - 1.0),
        );
        cfg.init.insert(
            "b".into(),
            init_fn(|g| ((g[0] * 5 + g[1]) % 9) as f32 * 0.25 - 1.0),
        );
        let outcome = run(&compiled, &cfg).expect("runs");
        println!(
            "measured:  {} I/O requests, {} bytes, {:.2} s simulated\n",
            outcome.report.io_requests_per_proc(),
            outcome.report.io_bytes_per_proc(),
            outcome.report.elapsed()
        );
    }

    // Finally, what the optimizer would have picked on its own.
    let auto = compile_source(&source, &CompilerOptions::default()).expect("compiles");
    println!("compiler's own choice:\n{}", auto.report());
}
