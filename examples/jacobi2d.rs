//! Out-of-core 2-D Jacobi relaxation — the class of loosely synchronous
//! stencil computation the paper's introduction motivates.
//!
//! Four sweeps alternate between two out-of-core arrays; the compiler
//! stripmines each sweep, inserts the ghost-cell exchanges along the
//! distributed dimension and picks the slab orientation that keeps the
//! reads contiguous. The result is checked against a serial four-sweep
//! reference.
//!
//! ```text
//! cargo run --release -p ooc-bench --example jacobi2d
//! ```

use noderun::{init_fn, max_abs_diff, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions};

const N: usize = 128;
const P: usize = 4;
const SWEEPS: usize = 4;

fn source() -> String {
    // A natural iterative program: the compiler unrolls the constant-trip
    // do loop into alternating sweeps (u -> v, v -> u).
    format!(
        "
      parameter (n={N}, half={half})
      real u(n, n), v(n, n)
!hpf$ processors pr({P})
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (:, *) with t :: u, v
      do it = 1, half
        forall (i = 2:n-1, j = 2:n-1)
          v(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
        end forall
        forall (i = 2:n-1, j = 2:n-1)
          u(i, j) = 0.25 * (v(i-1, j) + v(i+1, j) + v(i, j-1) + v(i, j+1))
        end forall
      end do
      end
",
        half = SWEEPS / 2
    )
}

fn init(g: &[usize]) -> f32 {
    // A hot square in the middle of a cold plate.
    let (i, j) = (g[0], g[1]);
    if (N / 4..3 * N / 4).contains(&i) && (N / 4..3 * N / 4).contains(&j) {
        100.0
    } else {
        0.0
    }
}

fn serial_sweeps(n: usize, sweeps: usize) -> Vec<f32> {
    let mut u: Vec<f32> = (0..n * n).map(|off| init(&[off % n, off / n])).collect();
    let mut v = u.clone();
    for _ in 0..sweeps {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                v[i + j * n] = 0.25
                    * (u[i - 1 + j * n]
                        + u[i + 1 + j * n]
                        + u[i + (j - 1) * n]
                        + u[i + (j + 1) * n]);
            }
        }
        std::mem::swap(&mut u, &mut v);
    }
    u
}

fn main() {
    let src = source();
    let compiled = compile_source(&src, &CompilerOptions::default()).expect("compiles");
    println!("{}", compiled.report());

    let mut cfg = RunConfig::default();
    cfg.init.insert("u".into(), init_fn(init));
    cfg.init.insert("v".into(), init_fn(init)); // boundaries keep initial values
    let result_array = if SWEEPS.is_multiple_of(2) { "u" } else { "v" };
    cfg.collect.push(result_array.to_string());
    let outcome = run(&compiled, &cfg).expect("runs");

    let (_, got) = &outcome.collected[result_array];
    let expect = serial_sweeps(N, SWEEPS);
    let err = max_abs_diff(got, &expect);
    println!(
        "{SWEEPS} sweeps of {N}x{N} on {P} processors: {:.2} s simulated, \
         {} I/O requests and {} messages per run, max |error| {err:.3e}",
        outcome.report.elapsed(),
        outcome.report.totals().io_read_requests + outcome.report.totals().io_write_requests,
        outcome.report.totals().msgs_sent,
    );
    assert!(err < 1e-4);
    println!("OK");
}
