//! Staged out-of-core pipeline: two separately compiled programs share an
//! array through exported local array files (the paper's §2.3 boundary with
//! "archival storage").
//!
//! Stage 1 computes `c = a · b` (GAXPY) and exports C. Stage 2 is a
//! different program that imports C and smooths it with a Jacobi sweep.
//! The composition is verified against a serial reference.
//!
//! ```text
//! cargo run --release -p ooc-bench --example staged_pipeline
//! ```

use noderun::{init_fn, ref_gaxpy, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions};

const N: usize = 64;
const P: usize = 4;

fn fa(g: &[usize]) -> f32 {
    ((g[0] * 7 + g[1] * 3) % 8) as f32 * 0.25 - 1.0
}
fn fb(g: &[usize]) -> f32 {
    ((g[0] * 5 + g[1]) % 9) as f32 * 0.25 - 1.0
}

fn main() {
    let dir = std::env::temp_dir().join(format!("ooc-staged-{}", std::process::id()));

    // ---- Stage 1: matrix product, C exported. ---------------------------
    let stage1 = format!(
        "
      parameter (n={N}, nprocs={P})
      real a(n,n), b(n,n), c(n,n), temp(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, c, temp
!hpf$ align (:,*) with d :: b
      do j = 1, n
        forall (k = 1:n)
          temp(1:n, k) = b(k, j) * a(1:n, k)
        end forall
        c(1:n, j) = sum(temp, 2)
      end do
      end
"
    );
    let compiled1 = compile_source(&stage1, &CompilerOptions::default()).expect("stage 1 compiles");
    let mut cfg1 = RunConfig::default();
    cfg1.init.insert("a".into(), init_fn(fa));
    cfg1.init.insert("b".into(), init_fn(fb));
    cfg1.export.push(("c".into(), dir.clone()));
    let out1 = run(&compiled1, &cfg1).expect("stage 1 runs");
    println!(
        "stage 1 (gaxpy): {:.2} s simulated; C exported to {}",
        out1.report.elapsed(),
        dir.display()
    );

    // ---- Stage 2: a different program imports C and smooths it. ---------
    let stage2 = format!(
        "
      parameter (n={N})
      real c(n, n), s(n, n)
!hpf$ processors pr({P})
!hpf$ template t(n)
!hpf$ distribute t(block) on pr
!hpf$ align (*, :) with t :: c, s
      forall (i = 2:n-1, j = 2:n-1)
        s(i, j) = 0.25 * (c(i-1, j) + c(i+1, j) + c(i, j-1) + c(i, j+1))
      end forall
      end
"
    );
    let compiled2 = compile_source(&stage2, &CompilerOptions::default()).expect("stage 2 compiles");
    let mut cfg2 = RunConfig::default();
    cfg2.import.push(("c".into(), dir.clone()));
    cfg2.collect.push("s".into());
    let out2 = run(&compiled2, &cfg2).expect("stage 2 runs");
    println!("stage 2 (smooth): {:.2} s simulated", out2.report.elapsed());

    // ---- Verify the composition. ----------------------------------------
    let c_ref = ref_gaxpy(N, &fa, &fb);
    let mut expect = vec![0.0f32; N * N];
    for j in 1..N - 1 {
        for i in 1..N - 1 {
            expect[i + j * N] = 0.25
                * (c_ref[i - 1 + j * N]
                    + c_ref[i + 1 + j * N]
                    + c_ref[i + (j - 1) * N]
                    + c_ref[i + (j + 1) * N]);
        }
    }
    let (_, s) = &out2.collected["s"];
    // Only the interior is defined by stage 2 (s's boundary stays zero).
    let mut err = 0.0f32;
    for j in 1..N - 1 {
        for i in 1..N - 1 {
            err = err.max((s[i + j * N] - expect[i + j * N]).abs());
        }
    }
    println!("max |error| of the composed pipeline: {err:.3e}");
    assert!(err < 1e-2);
    let _ = std::fs::remove_dir_all(&dir);
    println!("OK");
}
