//! Out-of-core matrix transpose — a whole-array remap where every
//! processor's data moves, compiled to a slab-wise all-to-all exchange.
//!
//! ```text
//! cargo run --release -p ooc-bench --example ooc_transpose
//! ```

use noderun::{init_fn, max_abs_diff, ref_transpose, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions};

fn main() {
    let n = 256;
    let p = 4;
    let src = format!(
        "
      parameter (n={n})
      real a(n, n), b(n, n)
!hpf$ processors pr({p})
!hpf$ distribute a(*, block) on pr
!hpf$ distribute b(*, block) on pr
      forall (i = 1:n, j = 1:n)
        b(i, j) = a(j, i)
      end forall
      end
"
    );
    let compiled = compile_source(&src, &CompilerOptions::default()).expect("compiles");
    println!("{}", compiled.report());
    println!("node program:\n{}", compiled.node_program_text(0));

    let init = |g: &[usize]| (g[0] * 1000 + g[1]) as f32;
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(init));
    cfg.collect.push("b".into());
    let outcome = run(&compiled, &cfg).expect("runs");

    let (_, b) = &outcome.collected["b"];
    let expect = ref_transpose(n, &init);
    let err = max_abs_diff(b, &expect);
    let totals = outcome.report.totals();
    println!(
        "transpose {n}x{n} on {p} procs: {:.2} s simulated, {} bytes communicated, \
         {} I/O requests, max |error| {err}",
        outcome.report.elapsed(),
        totals.bytes_sent,
        totals.io_read_requests + totals.io_write_requests,
    );
    assert_eq!(err, 0.0);
    println!("OK");
}
