//! Quickstart: compile the paper's Figure 3 program, let the optimizer pick
//! the access reorganization, run it on the simulated Touchstone Delta, and
//! verify the product.
//!
//! ```text
//! cargo run --release -p ooc-bench --example quickstart
//! ```

use noderun::{init_fn, max_abs_diff, ref_gaxpy, run, RunConfig};
use ooc_core::{compile_source, CompilerOptions};

fn main() {
    // The out-of-core HPF program (the paper's Figure 3, n scaled to 128).
    let source = "
      parameter (n=128, nprocs=4)
      real a(n,n), b(n,n), c(n,n), temp(n,n)
!hpf$ processors pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) on pr
!hpf$ align (*,:) with d :: a, c, temp
!hpf$ align (:,*) with d :: b
      do j = 1, n
        forall (k = 1:n)
          temp(1:n, k) = b(k, j) * a(1:n, k)
        end forall
        c(1:n, j) = sum(temp, 2)
      end do
      end
";

    // 1. Compile. The compiler estimates the I/O cost of each access
    //    pattern and reorganizes storage for the cheaper one.
    let compiled = compile_source(source, &CompilerOptions::default()).expect("compiles");
    println!("{}", compiled.report());

    // 2. The generated node program (Figure 12 of the paper).
    println!(
        "generated node+MP+I/O program:\n{}",
        compiled.node_program_text(0)
    );

    // 3. Execute with real data and verify.
    let fa = |g: &[usize]| ((g[0] * 7 + g[1] * 3) % 8) as f32 * 0.25 - 1.0;
    let fb = |g: &[usize]| ((g[0] * 5 + g[1]) % 9) as f32 * 0.25 - 1.0;
    let mut cfg = RunConfig::default();
    cfg.init.insert("a".into(), init_fn(fa));
    cfg.init.insert("b".into(), init_fn(fb));
    cfg.collect.push("c".into());
    let outcome = run(&compiled, &cfg).expect("runs");

    let (_, c) = &outcome.collected["c"];
    let expect = ref_gaxpy(128, &fa, &fb);
    println!(
        "simulated time: {:.2} s   I/O: {} requests, {} bytes per processor",
        outcome.report.elapsed(),
        outcome.report.io_requests_per_proc(),
        outcome.report.io_bytes_per_proc(),
    );
    println!(
        "max |error| vs serial reference: {:.3e}",
        max_abs_diff(c, &expect)
    );
    assert!(max_abs_diff(c, &expect) < 1e-2);
    println!("OK");
}
